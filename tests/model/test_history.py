"""Unit tests for histories and the ->co causal order."""

import pytest

from repro.model.history import (
    CausalOrder,
    History,
    HistoryBuilder,
    LocalHistory,
    example_h1,
)
from repro.model.operations import BOTTOM, Read, Write, WriteId


@pytest.fixture
def h1():
    return example_h1()


def writes_of(history):
    """Writes keyed by value, for readable assertions."""
    return {w.value: w for w in history.writes()}


class TestHistoryBuilder:
    def test_write_returns_consecutive_wids(self):
        b = HistoryBuilder(2)
        w1 = b.write(0, "x", "u")
        w2 = b.write(0, "y", "v")
        w3 = b.write(1, "x", "w")
        assert (w1.seq, w2.seq, w3.seq) == (1, 2, 1)

    def test_generated_values_are_unique(self):
        b = HistoryBuilder(1)
        a = b.write(0, "x")
        c = b.write(0, "x")
        h = b.build()
        vals = [w.value for w in h.writes()]
        assert len(set(vals)) == 2

    def test_read_from_none_reads_bottom(self):
        b = HistoryBuilder(1)
        r = b.read(0, "x", None)
        assert r.value is BOTTOM

    def test_read_variable_must_match_writer(self):
        b = HistoryBuilder(1)
        w = b.write(0, "x", "u")
        with pytest.raises(ValueError):
            b.read(0, "y", w)

    def test_read_from_unknown_write_rejected(self):
        b = HistoryBuilder(1)
        with pytest.raises(ValueError):
            b.read(0, "x", WriteId(0, 7))

    def test_process_out_of_range(self):
        b = HistoryBuilder(2)
        with pytest.raises(ValueError):
            b.write(2, "x", 1)
        with pytest.raises(ValueError):
            b.read(-1, "x", None)

    def test_zero_processes_rejected(self):
        with pytest.raises(ValueError):
            HistoryBuilder(0)


class TestLocalHistoryValidation:
    def test_wrong_process_rejected(self):
        w = Write(process=1, index=0, variable="x", value=1, wid=WriteId(1, 1))
        lh = LocalHistory(process=0, operations=(w,))
        with pytest.raises(ValueError):
            lh.validate()

    def test_wrong_index_rejected(self):
        w = Write(process=0, index=5, variable="x", value=1, wid=WriteId(0, 1))
        lh = LocalHistory(process=0, operations=(w,))
        with pytest.raises(ValueError):
            lh.validate()

    def test_nonconsecutive_seq_rejected(self):
        w = Write(process=0, index=0, variable="x", value=1, wid=WriteId(0, 2))
        lh = LocalHistory(process=0, operations=(w,))
        with pytest.raises(ValueError):
            lh.validate()

    def test_writes_and_reads_views(self, h1):
        lh = h1.local(1)
        assert len(lh.writes) == 1
        assert len(lh.reads) == 1
        assert len(lh) == 2


class TestHistoryBasics:
    def test_h1_shape(self, h1):
        assert h1.n_processes == 3
        assert len(h1) == 6
        assert len(list(h1.writes())) == 4
        assert len(list(h1.reads())) == 2
        assert h1.variables() == {"x1", "x2"}

    def test_write_by_id(self, h1):
        w = h1.write_by_id(WriteId(0, 2))
        assert w.value == "c"
        assert h1.has_write(WriteId(2, 1))
        assert not h1.has_write(WriteId(2, 9))
        with pytest.raises(KeyError):
            h1.write_by_id(WriteId(2, 9))

    def test_duplicate_write_id_rejected(self):
        w1 = Write(process=0, index=0, variable="x", value=1, wid=WriteId(0, 1))
        w2 = Write(process=1, index=0, variable="x", value=2, wid=WriteId(1, 1))
        lh0 = LocalHistory(0, (w1,))
        lh1 = LocalHistory(1, (w2,))
        History([lh0, lh1])  # fine
        dup = Write(process=1, index=0, variable="x", value=3, wid=WriteId(1, 1))
        with pytest.raises(ValueError):
            History([LocalHistory(0, (w1,)), LocalHistory(1, (dup, )),
                     LocalHistory(2, (Write(process=2, index=0, variable="y",
                                            value=4, wid=WriteId(1, 1)),))],
                    validate=False)

    def test_missing_process_rejected(self):
        w = Write(process=1, index=0, variable="x", value=1, wid=WriteId(1, 1))
        with pytest.raises(ValueError):
            History([LocalHistory(1, (w,))])

    def test_str_rendering(self, h1):
        s = str(h1)
        assert "h0: w0(x1)'a'; w0(x1)'c'" in s
        assert "h2: r2(x2)'b'; w2(x2)'d'" in s


class TestCausalOrderOnH1:
    """The ->co facts the paper states for Example 1."""

    def test_paper_relations(self, h1):
        co = h1.causal_order
        ws = writes_of(h1)
        a, b, c, d = ws["a"], ws["b"], ws["c"], ws["d"]
        # w1(x1)a ->co w2(x2)b, w1(x1)a ->co w1(x1)c, w2(x2)b ->co w3(x2)d
        assert co.precedes(a, b)
        assert co.precedes(a, c)
        assert co.precedes(b, d)
        # transitivity: a ->co d
        assert co.precedes(a, d)
        # w1(x1)c ||co w2(x2)b and w1(x1)c ||co w3(x2)d
        assert co.concurrent(c, b)
        assert co.concurrent(c, d)

    def test_not_symmetric(self, h1):
        co = h1.causal_order
        ws = writes_of(h1)
        assert not co.precedes(ws["b"], ws["a"])
        assert not co.precedes(ws["d"], ws["a"])

    def test_concurrent_is_irreflexive(self, h1):
        co = h1.causal_order
        for op in h1.operations():
            assert not co.concurrent(op, op)

    def test_causal_past_of_d(self, h1):
        co = h1.causal_order
        ws = writes_of(h1)
        past = co.write_causal_past(ws["d"])
        assert {w.value for w in past} == {"a", "b"}

    def test_causal_past_includes_reads(self, h1):
        co = h1.causal_order
        ws = writes_of(h1)
        past = co.causal_past(ws["d"])
        # a, b, and the two reads r2(x1)a, r3(x2)b
        assert len(past) == 4

    def test_causal_future(self, h1):
        co = h1.causal_order
        ws = writes_of(h1)
        fut = co.causal_future(ws["a"])
        vals = {op.value for op in fut if isinstance(op, Write)}
        assert vals == {"b", "c", "d"}

    def test_no_cycle(self, h1):
        assert not h1.causal_order.has_cycle

    def test_read_from_edge_generated(self, h1):
        edges = list(h1.base_edges())
        ro = [(a, b) for a, b in edges if a.process != b.process]
        assert len(ro) == 2  # the two read-from edges


class TestCausalOrderCycles:
    def test_cyclic_history_detected(self):
        # p0: r0(x)v ; w0(y)u      p1: r1(y)u ; w1(x)v
        # Each reads the value the *other* writes later: ->co is cyclic.
        wx = Write(process=1, index=1, variable="x", value="v", wid=WriteId(1, 1))
        wy = Write(process=0, index=1, variable="y", value="u", wid=WriteId(0, 1))
        rx = Read(process=0, index=0, variable="x", value="v", read_from=WriteId(1, 1))
        ry = Read(process=1, index=0, variable="y", value="u", read_from=WriteId(0, 1))
        h = History([LocalHistory(0, (rx, wy)), LocalHistory(1, (ry, wx))])
        co = h.causal_order
        assert co.has_cycle

    def test_cycle_members_precede_each_other(self):
        wx = Write(process=1, index=1, variable="x", value="v", wid=WriteId(1, 1))
        wy = Write(process=0, index=1, variable="y", value="u", wid=WriteId(0, 1))
        rx = Read(process=0, index=0, variable="x", value="v", read_from=WriteId(1, 1))
        ry = Read(process=1, index=0, variable="y", value="u", read_from=WriteId(0, 1))
        h = History([LocalHistory(0, (rx, wy)), LocalHistory(1, (ry, wx))])
        co = h.causal_order
        assert co.precedes(wx, wy) and co.precedes(wy, wx)


class TestCausalOrderEdgeCases:
    def test_single_process_total_order(self):
        b = HistoryBuilder(1)
        w1 = b.write(0, "x", 1)
        w2 = b.write(0, "x", 2)
        w3 = b.write(0, "y", 3)
        h = b.build()
        co = h.causal_order
        ops = list(h.operations())
        for i in range(3):
            for j in range(i + 1, 3):
                assert co.precedes(ops[i], ops[j])

    def test_fully_concurrent_writers(self):
        b = HistoryBuilder(3)
        for p in range(3):
            b.write(p, f"x{p}", p)
        h = b.build()
        co = h.causal_order
        ws = list(h.writes())
        for i in range(3):
            for j in range(3):
                if i != j:
                    assert co.concurrent(ws[i], ws[j])

    def test_empty_history(self):
        h = HistoryBuilder(2).build()
        assert len(h) == 0
        assert not h.causal_order.has_cycle

    def test_bottom_read_has_no_ro_edge(self):
        b = HistoryBuilder(2)
        b.read(0, "x", None)
        b.write(1, "x", "v")
        h = b.build()
        assert len(list(h.base_edges())) == 0

    def test_causal_order_cached(self):
        h = example_h1()
        assert h.causal_order is h.causal_order


class TestCausalOrderChains:
    def test_long_chain_via_reads(self):
        """p0 writes, p1 reads then writes, p2 reads then writes, ..."""
        n = 6
        b = HistoryBuilder(n)
        prev = b.write(0, "x0", 0)
        for p in range(1, n):
            b.read(p, f"x{p-1}", prev)
            prev = b.write(p, f"x{p}", p)
        h = b.build()
        co = h.causal_order
        ws = list(h.writes())
        for i in range(n):
            for j in range(i + 1, n):
                assert co.precedes(ws[i], ws[j]), (i, j)
