"""Tests for the batch ->co matrix (CausalOrder.precedes_matrix)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.model.history import example_h1


class TestPrecedesMatrix:
    def test_matches_scalar_on_h1(self):
        h = example_h1()
        co = h.causal_order
        ops = list(h.operations())
        m = co.precedes_matrix(ops)
        for i, a in enumerate(ops):
            for j, b in enumerate(ops):
                assert m[i, j] == (a.key != b.key and co.precedes(a, b)) \
                    or (a.key == b.key and not m[i, j])

    def test_subset_of_ops(self):
        h = example_h1()
        co = h.causal_order
        writes = list(h.writes())
        m = co.precedes_matrix(writes)
        assert m.shape == (4, 4)
        assert m.sum() == 4  # a<c, a<b, a<d, b<d

    def test_empty(self):
        h = example_h1()
        m = h.causal_order.precedes_matrix([])
        assert m.shape == (0, 0)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_matches_scalar_on_runs(self, seed):
        from repro.sim import SeededLatency, run_schedule
        from repro.workloads import WorkloadConfig, random_schedule

        cfg = WorkloadConfig(n_processes=3, ops_per_process=8, seed=seed)
        r = run_schedule("optp", 3, random_schedule(cfg),
                         latency=SeededLatency(seed))
        co = r.history.causal_order
        ops = list(r.history.operations())
        m = co.precedes_matrix(ops)
        for i, a in enumerate(ops):
            for j, b in enumerate(ops):
                if a.key != b.key:
                    assert m[i, j] == co.precedes(a, b)
