"""Tests for the Ahamad-style serialization definition of causal memory,
including its precise relation to the paper's Definition 1."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.model.history import HistoryBuilder, example_h1
from repro.model.legality import is_causally_consistent
from repro.model.serialization import (
    find_causal_serialization,
    is_causal_ahamad,
    verify_serialization,
)


class TestH1:
    def test_h1_is_serializable(self):
        h = example_h1()
        assert is_causal_ahamad(h)

    def test_witnesses_verify(self):
        h = example_h1()
        for p in range(3):
            s = find_causal_serialization(h, p)
            assert s is not None
            assert verify_serialization(h, p, s) == []

    def test_witness_includes_all_writes_and_own_reads(self):
        h = example_h1()
        s = find_causal_serialization(h, 2)
        from repro.model.operations import Read, Write

        assert sum(1 for op in s if isinstance(op, Write)) == 4
        reads = [op for op in s if isinstance(op, Read)]
        assert len(reads) == 1 and reads[0].process == 2


class TestDefinitionGap:
    def test_oscillating_reads_are_legal_but_not_serializable(self):
        """The documented gap: Definition 1 admits reads oscillating
        between ->co-concurrent writes; the serialization definition
        does not.  (No protocol in this repository can produce it.)"""
        b = HistoryBuilder(3)
        wa = b.write(0, "x", "a")
        wb = b.write(1, "x", "b")
        b.read(2, "x", wa)
        b.read(2, "x", wb)
        b.read(2, "x", wa)  # back to a after seeing b
        h = b.build()
        assert is_causally_consistent(h)          # Definition 1: legal
        assert find_causal_serialization(h, 2) is None  # Ahamad: not causal
        assert not is_causal_ahamad(h)

    def test_two_reads_no_oscillation_serializable(self):
        b = HistoryBuilder(3)
        wa = b.write(0, "x", "a")
        wb = b.write(1, "x", "b")
        b.read(2, "x", wa)
        b.read(2, "x", wb)
        h = b.build()
        assert is_causally_consistent(h)
        assert is_causal_ahamad(h)


class TestIllegalHistories:
    def test_overwritten_read_not_serializable(self):
        b = HistoryBuilder(2)
        w_old = b.write(0, "x", "old")
        b.write(0, "x", "new")
        b.read(1, "x", w_old)
        h = b.build()
        # p1 read old although new ->po-follows old at p0?  old || new is
        # false: same process, old ->co new.  Reading old is legal only
        # if new is not in the read's causal past -- it isn't here (p1
        # never saw new), so Definition 1 says legal AND a serialization
        # placing old, read, new exists:
        assert is_causally_consistent(h)
        assert is_causal_ahamad(h)

    def test_bottom_after_write_seen_not_serializable(self):
        b = HistoryBuilder(2)
        w = b.write(0, "x", "v")
        b.read(1, "x", w)
        b.read(1, "x", None)  # BOTTOM after having seen v
        h = b.build()
        assert not is_causally_consistent(h)
        assert not is_causal_ahamad(h)

    def test_cyclic_history_not_serializable(self):
        from repro.model.history import History, LocalHistory
        from repro.model.operations import Read, Write, WriteId

        wx = Write(process=1, index=1, variable="x", value="v", wid=WriteId(1, 1))
        wy = Write(process=0, index=1, variable="y", value="u", wid=WriteId(0, 1))
        rx = Read(process=0, index=0, variable="x", value="v", read_from=WriteId(1, 1))
        ry = Read(process=1, index=0, variable="y", value="u", read_from=WriteId(0, 1))
        h = History([LocalHistory(0, (rx, wy)), LocalHistory(1, (ry, wx))])
        assert find_causal_serialization(h, 0) is None


class TestProtocolRunsSatisfyBoth:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=1000),
           proto=st.sampled_from(["optp", "anbkh"]))
    def test_runs_are_serializable(self, seed, proto):
        from repro.sim import SeededLatency, run_schedule
        from repro.workloads import WorkloadConfig, random_schedule

        cfg = WorkloadConfig(n_processes=3, ops_per_process=6,
                             n_variables=2, write_fraction=0.6, seed=seed)
        r = run_schedule(proto, 3, random_schedule(cfg),
                         latency=SeededLatency(seed))
        h = r.history
        assert is_causally_consistent(h)
        assert is_causal_ahamad(h)


class TestVerifier:
    def test_detects_incomplete_witness(self):
        h = example_h1()
        s = find_causal_serialization(h, 0)
        assert verify_serialization(h, 0, s[:-1])

    def test_detects_order_violation(self):
        h = example_h1()
        s = find_causal_serialization(h, 0)
        # a (first write of p0) must precede c; swapping breaks ->co
        swapped = list(s)
        idx = {op.key: i for i, op in enumerate(swapped)}
        from repro.model.operations import WriteId

        a = h.write_by_id(WriteId(0, 1))
        c = h.write_by_id(WriteId(0, 2))
        ia, ic = idx[a.key], idx[c.key]
        swapped[ia], swapped[ic] = swapped[ic], swapped[ia]
        assert verify_serialization(h, 0, swapped)

    def test_step_bound(self):
        h = example_h1()
        with pytest.raises(RuntimeError, match="exceeded"):
            find_causal_serialization(h, 0, max_steps=2)
