"""Property tests over *arbitrary* (including inconsistent) histories.

Protocol runs only ever produce well-behaved histories; these tests
drive the theory layer -- causal order, legality, causality graph,
serialization -- with adversarial inputs generated directly by
hypothesis: random interleavings of writes and reads where each read
picks an arbitrary same-variable write (or BOTTOM) to read from.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.model.causality_graph import WriteCausalityGraph
from repro.model.legality import check_causal_consistency
from repro.model.serialization import is_causal_ahamad

from tests.strategies import histories

SETTINGS = settings(max_examples=60, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


class TestCausalOrderInvariants:
    @SETTINGS
    @given(histories())
    def test_acyclic(self, h):
        # reads only reference already-created writes -> no cycles
        assert not h.causal_order.has_cycle

    @SETTINGS
    @given(histories())
    def test_transitivity(self, h):
        co = h.causal_order
        ops = list(h.operations())
        for a in ops:
            for b in ops:
                if a.key == b.key or not co.precedes(a, b):
                    continue
                for c in ops:
                    if c.key != b.key and co.precedes(b, c):
                        assert co.precedes(a, c)

    @SETTINGS
    @given(histories())
    def test_antisymmetry_and_concurrency_partition(self, h):
        co = h.causal_order
        ops = list(h.operations())
        for a in ops:
            for b in ops:
                if a.key == b.key:
                    continue
                rel = (co.precedes(a, b), co.precedes(b, a), co.concurrent(a, b))
                assert sum(rel) == 1, (a, b, rel)

    @SETTINGS
    @given(histories())
    def test_process_order_embedded(self, h):
        co = h.causal_order
        for lh in h.locals:
            for i, a in enumerate(lh.operations):
                for b in lh.operations[i + 1:]:
                    assert co.precedes(a, b)

    @SETTINGS
    @given(histories())
    def test_causal_past_future_duality(self, h):
        co = h.causal_order
        ops = list(h.operations())
        for a in ops:
            past = {o.key for o in co.causal_past(a)}
            for b in ops:
                if b.key == a.key:
                    continue
                assert (b.key in past) == co.precedes(b, a)


class TestCausalityGraphInvariants:
    @SETTINGS
    @given(histories())
    def test_structural_validation(self, h):
        g = WriteCausalityGraph.from_history(h)
        g.validate()

    @SETTINGS
    @given(histories())
    def test_reduction_reaches_exactly_co(self, h):
        """Reachability in the reduced graph == ->co on writes."""
        import networkx as nx

        g = WriteCausalityGraph.from_history(h)
        co = h.causal_order
        writes = list(h.writes())
        for w1 in writes:
            reachable = nx.descendants(g.graph, w1.wid)
            for w2 in writes:
                if w1.wid == w2.wid:
                    continue
                assert (w2.wid in reachable) == co.precedes(w1, w2)


class TestDefinitionRelations:
    @SETTINGS
    @given(histories(max_processes=3, max_ops=8))
    def test_serializable_implies_legal(self, h):
        """Ahamad-causal (serializations exist) implies Definition 1-2
        legality -- the strict-implication direction of the documented
        definition gap."""
        if is_causal_ahamad(h, max_steps=50_000):
            assert check_causal_consistency(h).consistent

    @SETTINGS
    @given(histories(max_processes=3, max_ops=8))
    def test_illegal_implies_not_serializable(self, h):
        rep = check_causal_consistency(h)
        if not rep.consistent:
            assert not is_causal_ahamad(h, max_steps=50_000)
