"""Unit tests for repro.model.operations."""

import pickle

import pytest

from repro.model.operations import (
    BOTTOM,
    Bottom,
    OpKind,
    Read,
    Write,
    WriteId,
    fresh_value,
)


class TestBottom:
    def test_singleton(self):
        assert Bottom() is BOTTOM
        assert Bottom() is Bottom()

    def test_repr(self):
        assert repr(BOTTOM) == "BOTTOM"

    def test_pickle_roundtrip_preserves_identity(self):
        assert pickle.loads(pickle.dumps(BOTTOM)) is BOTTOM

    def test_equality_only_with_itself(self):
        assert BOTTOM == BOTTOM
        assert BOTTOM != 0
        assert BOTTOM != None  # noqa: E711 - deliberate
        assert BOTTOM != "BOTTOM"


class TestWriteId:
    def test_fields(self):
        wid = WriteId(2, 5)
        assert wid.process == 2
        assert wid.seq == 5

    def test_is_hashable_and_frozen(self):
        wid = WriteId(0, 1)
        assert hash(wid) == hash(WriteId(0, 1))
        with pytest.raises(AttributeError):
            wid.seq = 3  # type: ignore[misc]

    def test_ordering_is_lexicographic(self):
        assert WriteId(0, 2) < WriteId(1, 1)
        assert WriteId(1, 1) < WriteId(1, 2)

    def test_negative_process_rejected(self):
        with pytest.raises(ValueError):
            WriteId(-1, 1)

    def test_seq_is_one_based(self):
        with pytest.raises(ValueError):
            WriteId(0, 0)

    def test_str(self):
        assert str(WriteId(1, 3)) == "w[p1#3]"


class TestWrite:
    def test_construction(self):
        w = Write(process=1, index=0, variable="x", value=42, wid=WriteId(1, 1))
        assert w.kind is OpKind.WRITE
        assert w.key == (1, 0)
        assert w.variable == "x"
        assert w.value == 42

    def test_wid_process_must_match(self):
        with pytest.raises(ValueError):
            Write(process=1, index=0, variable="x", value=1, wid=WriteId(2, 1))

    def test_wid_required(self):
        with pytest.raises(ValueError):
            Write(process=0, index=0, variable="x", value=1, wid=None)

    def test_str(self):
        w = Write(process=0, index=0, variable="x1", value="a", wid=WriteId(0, 1))
        assert str(w) == "w0(x1)'a'"


class TestRead:
    def test_read_from_write(self):
        r = Read(process=0, index=1, variable="x", value="a", read_from=WriteId(1, 1))
        assert r.kind is OpKind.READ
        assert r.read_from == WriteId(1, 1)

    def test_bottom_read(self):
        r = Read(process=0, index=0, variable="x", value=BOTTOM, read_from=None)
        assert isinstance(r.value, Bottom)

    def test_non_bottom_read_without_writer_rejected(self):
        # Section 2: a read with no write must read the initial value.
        with pytest.raises(ValueError):
            Read(process=0, index=0, variable="x", value="a", read_from=None)

    def test_str(self):
        r = Read(process=2, index=0, variable="x2", value="b", read_from=WriteId(1, 1))
        assert str(r) == "r2(x2)'b'"


class TestFreshValue:
    def test_unique_per_wid(self):
        vals = {fresh_value(WriteId(p, s)) for p in range(3) for s in range(1, 10)}
        assert len(vals) == 27

    def test_readable(self):
        assert fresh_value(WriteId(2, 5)) == "v[p2#5]"
