"""Unit tests for Definitions 1-2 (legal reads, causal consistency)."""

import pytest

from repro.model.history import History, HistoryBuilder, LocalHistory, example_h1
from repro.model.legality import (
    check_causal_consistency,
    is_causally_consistent,
    is_legal_read,
)
from repro.model.operations import Read, Write, WriteId


class TestPaperExamples:
    def test_h1_is_causally_consistent(self):
        # Example 1 of the paper.
        assert is_causally_consistent(example_h1())

    def test_h1_report(self):
        rep = check_causal_consistency(example_h1())
        assert rep.consistent
        assert not rep.violations
        assert not rep.cyclic
        assert bool(rep) is True
        assert rep.summary() == "causally consistent"


class TestLegalReads:
    def test_read_of_latest_causal_write_is_legal(self):
        b = HistoryBuilder(2)
        w1 = b.write(0, "x", "old")
        w2 = b.write(0, "x", "new")
        b.read(1, "x", w2)
        h = b.build()
        assert is_causally_consistent(h)

    def test_read_of_overwritten_value_is_illegal(self):
        """w(x)old ->co w(x)new ->co r(x)old violates Definition 1."""
        b = HistoryBuilder(2)
        w_old = b.write(0, "x", "old")
        w_new = b.write(0, "x", "new")
        # p1 reads new first (establishing new ->co the later read), then old
        b.read(1, "x", w_new)
        r = b.read(1, "x", w_old)
        h = b.build()
        rep = check_causal_consistency(h)
        assert not rep.consistent
        assert len(rep.violations) == 1
        v = rep.violations[0]
        assert v.read.value == "old"
        assert v.interposed is not None and v.interposed.value == "new"

    def test_stale_read_of_concurrent_write_is_legal(self):
        """Two concurrent writes to x: either may be read (causal memory
        allows different processes to see concurrent writes in different
        orders)."""
        b = HistoryBuilder(3)
        w1 = b.write(0, "x", "v0")
        w2 = b.write(1, "x", "v1")
        b.read(2, "x", w1)
        h = b.build()
        assert is_causally_consistent(h)

    def test_bottom_read_before_any_write_is_legal(self):
        b = HistoryBuilder(2)
        b.read(0, "x", None)
        b.write(1, "x", "v")
        h = b.build()
        assert is_causally_consistent(h)

    def test_bottom_read_after_causally_seen_write_is_illegal(self):
        b = HistoryBuilder(2)
        w = b.write(0, "x", "v")
        b.read(1, "x", w)      # p1 causally saw w
        b.read(1, "x", None)   # ...then reads BOTTOM: illegal
        h = b.build()
        rep = check_causal_consistency(h)
        assert not rep.consistent
        assert "BOTTOM" in rep.violations[0].reason

    def test_bottom_read_with_only_concurrent_writes_is_legal(self):
        b = HistoryBuilder(2)
        b.read(0, "x", None)
        b.write(1, "x", "v")
        h = b.build()
        r = next(iter(h.reads()))
        assert is_legal_read(h, r) is None

    def test_read_from_own_overwritten_write_is_illegal(self):
        b = HistoryBuilder(1)
        w1 = b.write(0, "x", "first")
        w2 = b.write(0, "x", "second")
        b.read(0, "x", w1)  # reads own older write after writing newer
        h = b.build()
        assert not is_causally_consistent(h)

    def test_interposition_requires_same_variable(self):
        """A causally newer write to a *different* variable does not
        invalidate a read (Definition 1 quantifies over writes on x)."""
        b = HistoryBuilder(2)
        wx = b.write(0, "x", "vx")
        wy = b.write(0, "y", "vy")
        b.read(1, "y", wy)   # pulls wy (and wx) into causal past
        b.read(1, "x", wx)   # still legal: nothing newer on x
        h = b.build()
        assert is_causally_consistent(h)

    def test_violation_str_mentions_read(self):
        b = HistoryBuilder(2)
        w_old = b.write(0, "x", "old")
        w_new = b.write(0, "x", "new")
        b.read(1, "x", w_new)
        b.read(1, "x", w_old)
        rep = check_causal_consistency(b.build())
        s = str(rep.violations[0])
        assert "illegal read" in s
        assert "interposed" in s
        assert "INCONSISTENT" in rep.summary()


class TestReadFromNotInPast:
    def test_read_from_future_write_creates_cycle(self):
        """A read that claims to read-from a *later* write of the same
        process makes ->co cyclic (the ->ro edge points backwards), and
        the checker reports the cycle rather than an illegal read."""
        w = Write(process=0, index=1, variable="x", value="v", wid=WriteId(0, 1))
        r = Read(process=0, index=0, variable="x", value="v", read_from=WriteId(0, 1))
        h = History([LocalHistory(0, (r, w))])
        rep = check_causal_consistency(h)
        assert not rep.consistent
        assert rep.cyclic


class TestCyclicHistories:
    def test_cyclic_history_is_inconsistent(self):
        wx = Write(process=1, index=1, variable="x", value="v", wid=WriteId(1, 1))
        wy = Write(process=0, index=1, variable="y", value="u", wid=WriteId(0, 1))
        rx = Read(process=0, index=0, variable="x", value="v", read_from=WriteId(1, 1))
        ry = Read(process=1, index=0, variable="y", value="u", read_from=WriteId(0, 1))
        h = History([LocalHistory(0, (rx, wy)), LocalHistory(1, (ry, wx))])
        rep = check_causal_consistency(h)
        assert not rep.consistent
        assert rep.cyclic
        assert "cycle" in rep.summary()


class TestMixedScenarios:
    def test_concurrent_writes_seen_in_different_orders(self):
        """The hallmark of causal (vs sequential) consistency: two readers
        order two concurrent writes differently, and that's fine."""
        b = HistoryBuilder(4)
        w1 = b.write(0, "x", "v0")
        w2 = b.write(1, "x", "v1")
        # reader 2 sees v0 then v1; reader 3 sees v1 then v0
        b.read(2, "x", w1)
        b.read(2, "x", w2)
        b.read(3, "x", w2)
        b.read(3, "x", w1)
        h = b.build()
        assert is_causally_consistent(h)

    def test_once_ordered_cannot_flip(self):
        """If a reader's own read makes w1 ->co w2, a later read of w1 by a
        process that saw w2 is illegal."""
        b = HistoryBuilder(3)
        w1 = b.write(0, "x", "v0")
        b.read(1, "x", w1)
        w2 = b.write(1, "x", "v1")   # now w1 ->co w2
        b.read(2, "x", w2)
        b.read(2, "x", w1)           # illegal: w1 overwritten by w2
        h = b.build()
        assert not is_causally_consistent(h)

    def test_larger_consistent_history(self):
        b = HistoryBuilder(3)
        a = b.write(0, "x", "a")
        b.read(1, "x", a)
        bb = b.write(1, "y", "b")
        b.read(2, "y", bb)
        d = b.write(2, "y", "d")
        b.read(0, "y", d)
        b.write(0, "z", "e")
        h = b.build()
        assert is_causally_consistent(h)
