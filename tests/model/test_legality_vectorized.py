"""Differential proof: the vectorized legality checker is ``==``-
identical to the scalar reference -- verdicts, violation order,
reasons, and interposed witnesses -- on legal and illegal histories."""

import pytest

from repro.model.history import History, HistoryBuilder, LocalHistory, example_h1
from repro.model.legality import check_causal_consistency
from repro.model.operations import Read, Write, WriteId
from repro.sim import run_schedule
from repro.workloads import WorkloadConfig, random_schedule


def both(history):
    vec = check_causal_consistency(history, mode="vectorized")
    ref = check_causal_consistency(history, mode="scalar")
    return vec, ref


def assert_identical(history):
    vec, ref = both(history)
    assert vec.consistent == ref.consistent
    assert vec.cyclic == ref.cyclic
    assert vec.violations == ref.violations
    return vec


# -- legal histories ---------------------------------------------------------

def test_h1_identical():
    assert assert_identical(example_h1()).consistent


@pytest.mark.parametrize("protocol", ["optp", "anbkh"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_protocol_runs_identical(protocol, seed):
    cfg = WorkloadConfig(n_processes=4, ops_per_process=12,
                         write_fraction=0.6, seed=seed)
    r = run_schedule(protocol, 4, random_schedule(cfg))
    rep = assert_identical(r.history)
    assert rep.consistent


def test_history_with_no_reads():
    b = HistoryBuilder(2)
    b.write(0, "x", "a")
    b.write(1, "y", "b")
    assert assert_identical(b.build()).consistent


def test_read_of_unwritten_variable():
    b = HistoryBuilder(2)
    b.write(0, "x", "a")
    b.read(1, "z", None)   # no write to z anywhere: trivially legal
    assert assert_identical(b.build()).consistent


# -- handcrafted violations --------------------------------------------------

def test_bottom_after_causally_seen_write():
    b = HistoryBuilder(2)
    w = b.write(0, "x", "v")
    b.read(1, "x", w)
    b.read(1, "x", None)   # BOTTOM after causally seeing w: illegal
    rep = assert_identical(b.build())
    assert not rep.consistent
    assert "BOTTOM" in rep.violations[0].reason
    assert rep.violations[0].interposed.wid == w


def test_interposed_write():
    b = HistoryBuilder(2)
    w_old = b.write(0, "x", "old")
    w_new = b.write(0, "x", "new")
    b.read(1, "x", w_new)
    b.read(1, "x", w_old)  # w_old ->co w_new ->co this read: illegal
    rep = assert_identical(b.build())
    assert not rep.consistent
    assert len(rep.violations) == 1
    assert rep.violations[0].interposed.wid == w_new


def test_multiple_violations_same_order():
    """Two independent illegal reads: both paths report them in
    history-read order with the same witnesses."""
    b = HistoryBuilder(3)
    w_old = b.write(0, "x", "old")
    w_new = b.write(0, "x", "new")
    b.read(1, "x", w_new)
    b.read(1, "x", w_old)      # violation 1 (interposed)
    wy = b.write(2, "y", "v")
    b.read(2, "y", wy)
    b.read(2, "y", None)       # violation 2 (BOTTOM)
    rep = assert_identical(b.build())
    assert len(rep.violations) == 2
    assert rep.violations[0].read.variable == "x"
    assert rep.violations[1].read.variable == "y"


def test_cyclic_history_short_circuits():
    """Cyclic ->co is rejected before either engine runs (the closure
    trick needs a DAG), identically in every mode."""
    w = Write(process=0, index=1, variable="x", value="v", wid=WriteId(0, 1))
    r = Read(process=0, index=0, variable="x", value="v",
             read_from=WriteId(0, 1))
    h = History([LocalHistory(0, (r, w))])
    for mode in ("auto", "vectorized", "scalar"):
        rep = check_causal_consistency(h, mode=mode)
        assert not rep.consistent
        assert rep.cyclic


# -- mode plumbing -----------------------------------------------------------

def test_auto_matches_explicit_modes():
    h = example_h1()
    auto = check_causal_consistency(h, mode="auto")
    default = check_causal_consistency(h)
    assert auto.consistent and default.consistent


def test_unknown_mode_raises():
    with pytest.raises(ValueError, match="mode must be"):
        check_causal_consistency(example_h1(), mode="fast")
