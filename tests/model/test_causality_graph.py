"""Unit tests for the write causality graph (Section 4.3, Figure 7)."""

import pytest

from repro.model.causality_graph import WriteCausalityGraph, immediate_predecessors
from repro.model.history import (
    History,
    HistoryBuilder,
    LocalHistory,
    example_h1,
)
from repro.model.operations import Read, Write, WriteId


@pytest.fixture
def h1():
    return example_h1()


@pytest.fixture
def g1(h1):
    return WriteCausalityGraph.from_history(h1)


class TestFigure7:
    """The exact graph drawn in Figure 7 of the paper."""

    def test_edges(self, g1):
        wa, wc = WriteId(0, 1), WriteId(0, 2)
        wb, wd = WriteId(1, 1), WriteId(2, 1)
        assert set(g1.edge_list()) == {(wa, wc), (wa, wb), (wb, wd)}

    def test_immediate_predecessors_match_paper(self, h1, g1):
        # "w1(x1)c is a w3(x2)d's immediate predecessor" -- wait, the paper
        # text says w2(x2)b is the immediate predecessor of w3(x2)d, and
        # w1(x1)a of both w1(x1)c and w2(x2)b.
        wa, wc = WriteId(0, 1), WriteId(0, 2)
        wb, wd = WriteId(1, 1), WriteId(2, 1)
        assert g1.predecessors(wa) == []
        assert g1.predecessors(wc) == [wa]
        assert g1.predecessors(wb) == [wa]
        assert g1.predecessors(wd) == [wb]

    def test_roots(self, g1):
        assert g1.roots() == [WriteId(0, 1)]

    def test_validate_passes(self, g1):
        g1.validate()

    def test_transitive_edge_absent(self, g1):
        """a ->co d holds but a -> d is not an edge (transitive reduction)."""
        assert (WriteId(0, 1), WriteId(2, 1)) not in set(g1.edge_list())

    def test_ascii_rendering(self, g1):
        art = g1.to_ascii()
        assert "w0(x1)'a'" in art
        assert art.index("w0(x1)'a'") < art.index("w2(x2)'d'")


class TestImmediatePredecessorsFunction:
    def test_agrees_with_graph(self, h1, g1):
        for w in h1.writes():
            direct = {p.wid for p in immediate_predecessors(h1, w)}
            assert direct == set(g1.predecessors(w.wid))

    def test_chain_collapses_to_single_predecessor(self):
        b = HistoryBuilder(1)
        b.write(0, "x", 1)
        b.write(0, "x", 2)
        w3 = b.write(0, "x", 3)
        h = b.build()
        preds = immediate_predecessors(h, h.write_by_id(w3))
        assert [p.wid for p in preds] == [WriteId(0, 2)]


class TestGraphProperties:
    def test_at_most_one_immediate_predecessor_per_process(self):
        """Section 4.3: each write has at most n immediate predecessors,
        one per process."""
        b = HistoryBuilder(4)
        ws = [b.write(p, f"x{p}", p) for p in range(3)]
        for p, w in enumerate(ws):
            b.read(3, f"x{p}", w)
        wid = b.write(3, "y", "sink")
        h = b.build()
        g = WriteCausalityGraph.from_history(h)
        g.validate()
        assert len(g.predecessors(wid)) == 3

    def test_longest_chain(self, g1):
        assert g1.longest_chain_length() == 2  # a -> b -> d

    def test_empty_graph(self):
        h = HistoryBuilder(2).build()
        g = WriteCausalityGraph.from_history(h)
        assert g.longest_chain_length() == 0
        assert g.roots() == []
        g.validate()

    def test_chains_between(self, g1):
        chains = list(g1.chains_between(WriteId(0, 1), WriteId(2, 1)))
        assert chains == [[WriteId(0, 1), WriteId(1, 1), WriteId(2, 1)]]

    def test_successors(self, g1):
        assert g1.successors(WriteId(0, 1)) == [WriteId(0, 2), WriteId(1, 1)]

    def test_cyclic_history_rejected(self):
        wx = Write(process=1, index=1, variable="x", value="v", wid=WriteId(1, 1))
        wy = Write(process=0, index=1, variable="y", value="u", wid=WriteId(0, 1))
        rx = Read(process=0, index=0, variable="x", value="v", read_from=WriteId(1, 1))
        ry = Read(process=1, index=0, variable="y", value="u", read_from=WriteId(0, 1))
        h = History([LocalHistory(0, (rx, wy)), LocalHistory(1, (ry, wx))])
        with pytest.raises(ValueError):
            WriteCausalityGraph.from_history(h)

    def test_diamond(self):
        """w_root -> {w_left, w_right} -> w_sink keeps both middle edges."""
        b = HistoryBuilder(4)
        root = b.write(0, "r", 0)
        b.read(1, "r", root)
        left = b.write(1, "l", 1)
        b.read(2, "r", root)
        right = b.write(2, "m", 2)
        b.read(3, "l", left)
        b.read(3, "m", right)
        sink = b.write(3, "s", 3)
        h = b.build()
        g = WriteCausalityGraph.from_history(h)
        g.validate()
        assert set(g.predecessors(sink)) == {left, right}
        assert g.longest_chain_length() == 2
