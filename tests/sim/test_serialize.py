"""Round-trip tests for trace serialization."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import check_run
from repro.sim import SeededLatency, run_schedule
from repro.sim.result import RunResult
from repro.sim.serialize import trace_from_jsonl, trace_to_jsonl
from repro.workloads import WorkloadConfig, fig3, random_schedule

from tests.strategies import latency_seeds, workload_configs


def roundtrip(trace):
    return trace_from_jsonl(trace_to_jsonl(trace))


class TestRoundTripProperties:
    """Serialization is an exact involution on *arbitrary* generated
    runs, not just the canned ones below."""

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(cfg=workload_configs(max_processes=4, max_ops=8),
           proto=st.sampled_from(["optp", "anbkh", "ws-receiver",
                                  "sequencer"]),
           lseed=latency_seeds)
    def test_dump_load_dump_is_identity(self, cfg, proto, lseed):
        r = run_schedule(proto, cfg.n_processes, random_schedule(cfg),
                         latency=SeededLatency(lseed), record_state=True)
        text = trace_to_jsonl(r.trace)
        assert trace_to_jsonl(trace_from_jsonl(text)) == text


class TestRoundTrip:
    @pytest.mark.parametrize("proto", ["optp", "anbkh", "ws-receiver",
                                       "jimenez-token", "sequencer",
                                       "gossip-optp"])
    def test_events_identical(self, proto):
        cfg = WorkloadConfig(n_processes=3, ops_per_process=8,
                             write_fraction=0.6, seed=4)
        r = run_schedule(proto, 3, random_schedule(cfg),
                         latency=SeededLatency(4), record_state=True)
        loaded = roundtrip(r.trace)
        assert len(loaded) == len(r.trace)
        assert ([str(e) for e in loaded.events]
                == [str(e) for e in r.trace.events])

    def test_indexes_survive(self):
        scen = fig3()
        r = run_schedule("optp", 3, scen.schedule, latency=scen.latency,
                         record_state=True)
        loaded = roundtrip(r.trace)
        for p in range(3):
            assert loaded.apply_order(p) == r.trace.apply_order(p)
        for wid in r.trace.writes_issued():
            for p in range(3):
                orig = r.trace.receipt_event(p, wid)
                got = loaded.receipt_event(p, wid)
                assert (orig is None) == (got is None)
                if orig is not None:
                    assert got.time == orig.time

    def test_deferred_local_applies_survive(self):
        """Sequencer WRITE events must not re-register as applies."""
        cfg = WorkloadConfig(n_processes=3, ops_per_process=6,
                             write_fraction=0.8, seed=2)
        r = run_schedule("sequencer", 3, random_schedule(cfg),
                         latency=SeededLatency(2))
        loaded = roundtrip(r.trace)  # duplicate-apply assert would fire
        for p in range(3):
            assert loaded.apply_order(p) == r.trace.apply_order(p)

    def test_analyzers_accept_reloaded_trace(self):
        scen = fig3()
        r = run_schedule("anbkh", 3, scen.schedule, latency=scen.latency)
        loaded = roundtrip(r.trace)
        rebuilt = RunResult(
            protocol_name=r.protocol_name,
            n_processes=r.n_processes,
            trace=loaded,
            duration=r.duration,
            messages_sent=r.messages_sent,
            bytes_estimate=r.bytes_estimate,
            stores=r.stores,
            protocol_stats=r.protocol_stats,
        )
        report = check_run(rebuilt)
        assert report.ok
        assert len(report.unnecessary_delays) == 1  # fig3's false causality

    def test_bottom_and_state_roundtrip(self):
        from repro.model.operations import BOTTOM
        from repro.sim.trace import EventKind, Trace

        t = Trace(1)
        t.record(0.0, 0, EventKind.RETURN, variable="x", value=BOTTOM,
                 read_from=None, state={"write_co": (1, 2), "apply": (0, 0)})
        loaded = roundtrip(t)
        ev = loaded.events[0]
        assert ev.value is BOTTOM
        assert ev.state["write_co"] == (1, 2)


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            trace_from_jsonl("")

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            trace_from_jsonl('{"seq": 0}\n')

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            trace_from_jsonl('{"header": true, "version": 99, "n_processes": 1}\n')

    def test_truncation_detected(self):
        scen = fig3()
        r = run_schedule("optp", 3, scen.schedule, latency=scen.latency)
        lines = trace_to_jsonl(r.trace).splitlines()
        corrupted = "\n".join([lines[0]] + lines[2:])  # drop event 0
        with pytest.raises(ValueError, match="out of order"):
            trace_from_jsonl(corrupted)


class TestRunMetricsRoundTrip:
    def metrics(self, seed=0):
        from repro.analysis import check_run
        from repro.analysis.metrics import RunMetrics
        from repro.sim import run_schedule
        from repro.workloads import WorkloadConfig, random_schedule

        cfg = WorkloadConfig(n_processes=3, ops_per_process=6, seed=seed)
        r = run_schedule("optp", 3, random_schedule(cfg))
        return RunMetrics.of(r, check_run(r))

    def test_round_trip_is_exact(self):
        from repro.sim.serialize import (
            run_metrics_from_dict,
            run_metrics_to_dict,
        )

        m = self.metrics()
        assert run_metrics_from_dict(run_metrics_to_dict(m)) == m

    def test_round_trip_survives_json(self):
        """The cache stores JSON text; Python float encoding is
        repr-based so every float survives bit-for-bit."""
        import json

        from repro.sim.serialize import (
            run_metrics_from_dict,
            run_metrics_to_dict,
        )

        m = self.metrics(seed=3)
        doc = json.loads(json.dumps(run_metrics_to_dict(m)))
        assert run_metrics_from_dict(doc) == m

    def test_wrong_version_rejected(self):
        from repro.sim.serialize import (
            run_metrics_from_dict,
            run_metrics_to_dict,
        )

        doc = run_metrics_to_dict(self.metrics())
        doc["metrics_version"] = 99
        with pytest.raises(ValueError, match="version"):
            run_metrics_from_dict(doc)

    def test_missing_field_rejected(self):
        from repro.sim.serialize import (
            run_metrics_from_dict,
            run_metrics_to_dict,
        )

        doc = run_metrics_to_dict(self.metrics())
        del doc["delays"]
        with pytest.raises(ValueError, match="fields"):
            run_metrics_from_dict(doc)

    def test_extra_field_rejected(self):
        from repro.sim.serialize import (
            run_metrics_from_dict,
            run_metrics_to_dict,
        )

        doc = run_metrics_to_dict(self.metrics())
        doc["surprise"] = 1
        with pytest.raises(ValueError, match="fields"):
            run_metrics_from_dict(doc)

    def test_malformed_delay_stats_rejected(self):
        from repro.sim.serialize import (
            run_metrics_from_dict,
            run_metrics_to_dict,
        )

        doc = run_metrics_to_dict(self.metrics())
        doc["delay_stats"] = {"count": 1}
        with pytest.raises(ValueError, match="delay_stats"):
            run_metrics_from_dict(doc)
