"""Unit tests for trace recording and history extraction."""

import pytest

from repro.model.operations import BOTTOM, WriteId
from repro.sim.trace import EventKind, Trace


class TestRecording:
    def test_global_seq_monotone(self):
        t = Trace(2)
        e1 = t.record(0.0, 0, EventKind.WRITE, wid=WriteId(0, 1), variable="x", value=1)
        e2 = t.record(0.0, 1, EventKind.RECEIPT, wid=WriteId(0, 1))
        assert e2.seq == e1.seq + 1
        assert len(t) == 2

    def test_per_process_views(self):
        t = Trace(2)
        t.record(0.0, 0, EventKind.WRITE, wid=WriteId(0, 1), variable="x", value=1)
        t.record(1.0, 1, EventKind.RECEIPT, wid=WriteId(0, 1))
        t.record(1.0, 1, EventKind.APPLY, wid=WriteId(0, 1), variable="x", value=1)
        assert len(t.process_events(0)) == 1
        assert len(t.process_events(1)) == 2

    def test_prefix_before(self):
        t = Trace(1)
        a = t.record(0.0, 0, EventKind.WRITE, wid=WriteId(0, 1), variable="x", value=1)
        b = t.record(1.0, 0, EventKind.RETURN, variable="x", value=1,
                     read_from=WriteId(0, 1))
        assert t.prefix_before(0, b) == [a]
        assert t.prefix_before(0, a) == []

    def test_duplicate_apply_rejected(self):
        t = Trace(2)
        t.record(0.0, 1, EventKind.APPLY, wid=WriteId(0, 1), variable="x", value=1)
        with pytest.raises(AssertionError):
            t.record(1.0, 1, EventKind.APPLY, wid=WriteId(0, 1), variable="x", value=1)

    def test_write_event_is_local_apply(self):
        t = Trace(2)
        t.record(0.0, 0, EventKind.WRITE, wid=WriteId(0, 1), variable="x", value=1)
        assert t.apply_event(0, WriteId(0, 1)) is not None
        assert t.apply_event(1, WriteId(0, 1)) is None


class TestQueries:
    def _sample(self):
        t = Trace(2)
        t.record(0.0, 0, EventKind.WRITE, wid=WriteId(0, 1), variable="x", value="v1")
        t.record(0.0, 0, EventKind.SEND, wid=WriteId(0, 1))
        t.record(0.5, 0, EventKind.WRITE, wid=WriteId(0, 2), variable="y", value="v2")
        t.record(0.5, 0, EventKind.SEND, wid=WriteId(0, 2))
        # p1 receives y first, buffers it, then x arrives and both apply
        t.record(1.0, 1, EventKind.RECEIPT, wid=WriteId(0, 2), variable="y")
        t.record(1.0, 1, EventKind.BUFFER, wid=WriteId(0, 2), variable="y")
        t.record(2.0, 1, EventKind.RECEIPT, wid=WriteId(0, 1), variable="x")
        t.record(2.0, 1, EventKind.APPLY, wid=WriteId(0, 1), variable="x", value="v1")
        t.record(2.0, 1, EventKind.APPLY, wid=WriteId(0, 2), variable="y", value="v2")
        return t

    def test_apply_order(self):
        t = self._sample()
        assert t.apply_order(1) == [WriteId(0, 1), WriteId(0, 2)]
        assert t.apply_order(0) == [WriteId(0, 1), WriteId(0, 2)]

    def test_delayed(self):
        t = self._sample()
        delayed = t.delayed()
        assert len(delayed) == 1 and delayed[0].wid == WriteId(0, 2)
        assert t.delayed(0) == []
        assert len(t.delayed(1)) == 1

    def test_delay_durations(self):
        t = self._sample()
        assert t.delay_durations() == [1.0]  # buffered at 1.0, applied at 2.0

    def test_receipt_event(self):
        t = self._sample()
        assert t.receipt_event(1, WriteId(0, 1)).time == 2.0
        assert t.receipt_event(0, WriteId(0, 1)) is None

    def test_writes_issued(self):
        t = self._sample()
        assert t.writes_issued() == [WriteId(0, 1), WriteId(0, 2)]

    def test_discarded(self):
        t = Trace(2)
        t.record(0.0, 1, EventKind.DISCARD, wid=WriteId(0, 1))
        assert len(t.discarded()) == 1
        assert len(t.discarded(0)) == 0

    def test_render(self):
        t = self._sample()
        text = t.render()
        assert "p0 write" in text
        assert "p1 buffer" in text
        only_applies = t.render(kinds={EventKind.APPLY})
        assert "buffer" not in only_applies


class TestToHistory:
    def test_roundtrip(self):
        t = Trace(2)
        t.record(0.0, 0, EventKind.WRITE, wid=WriteId(0, 1), variable="x", value="v")
        t.record(1.0, 1, EventKind.RECEIPT, wid=WriteId(0, 1))
        t.record(1.0, 1, EventKind.APPLY, wid=WriteId(0, 1), variable="x", value="v")
        t.record(2.0, 1, EventKind.RETURN, variable="x", value="v",
                 read_from=WriteId(0, 1))
        h = t.to_history()
        assert h.n_processes == 2
        assert len(list(h.writes())) == 1
        reads = list(h.reads())
        assert len(reads) == 1 and reads[0].read_from == WriteId(0, 1)

    def test_bottom_reads_preserved(self):
        t = Trace(1)
        t.record(0.0, 0, EventKind.RETURN, variable="x", value=BOTTOM, read_from=None)
        h = t.to_history()
        r = next(iter(h.reads()))
        assert r.read_from is None

    def test_applies_are_not_history_ops(self):
        t = Trace(2)
        t.record(0.0, 0, EventKind.WRITE, wid=WriteId(0, 1), variable="x", value="v")
        t.record(1.0, 1, EventKind.APPLY, wid=WriteId(0, 1), variable="x", value="v")
        h = t.to_history()
        assert len(h.local(1)) == 0
