"""Ablation: the exactly-once channel assumption is load-bearing.

The paper's system model (Section 3.1) requires every message be
received *exactly once*.  These tests inject duplicates to show what
actually breaks without it: a duplicate of an already-applied write can
never satisfy OptP's activation predicate again, so it sits in the
pending buffer forever -- a replica-side memory leak -- and every such
buffering is recorded as a write delay, corrupting the optimality
accounting (the audit reports "unnecessary delays" for a provably
optimal protocol).  Safety and legality survive (the predicate never
applies stale state); the standard at-least-once fix (receiver-side
dedup by WriteId) restores everything.
"""

import pytest

from repro.analysis import check_run
from repro.sim import SimCluster
from repro.sim.latency import SeededLatency
from repro.workloads import WorkloadConfig, random_schedule


def make_cluster(**kw):
    return SimCluster("optp", 4, latency=SeededLatency(5), **kw)


def workload(seed=5):
    cfg = WorkloadConfig(n_processes=4, ops_per_process=10,
                         write_fraction=0.8, seed=seed)
    return random_schedule(cfg)


class TestAssumptionIsLoadBearing:
    def test_duplicates_leak_buffers_and_corrupt_accounting(self):
        """Without dedup: duplicates of applied writes stay buffered
        forever (memory leak) and are mis-counted as write delays --
        the audit then blames OptP for 'unnecessary' delays it never
        chose to execute.  Safety and legality still hold."""
        c = make_cluster(duplicate_prob=0.5)
        r = c.run_schedule(workload())
        assert c.network.duplicates_injected > 0
        leaked = sum(n.buffered_count for n in c.nodes)
        assert leaked > 0, "duplicates should wedge in pending buffers"
        report = check_run(r)
        # correctness of applied state survives...
        assert report.ok, report.summary()
        # ...but the optimality audit is corrupted by phantom delays
        assert report.unnecessary_delays, (
            "duplicate buffering should surface as phantom unnecessary "
            "delays -- if this stops failing, exactly-once broke silently"
        )

    def test_dedup_restores_correctness(self):
        c = make_cluster(duplicate_prob=0.5, dedup=True)
        r = c.run_schedule(workload())
        report = check_run(r)
        assert report.ok, report.summary()
        assert not report.unnecessary_delays
        dropped = sum(n.duplicates_dropped for n in c.nodes)
        assert dropped == c.network.duplicates_injected > 0

    def test_gossip_tolerates_duplicates_natively(self):
        """The gossip variant discards already-applied writes by design
        (its DISCARD path), so it survives duplication without the
        substrate guard."""
        c = SimCluster("gossip-optp", 4, latency=SeededLatency(5),
                       duplicate_prob=0.5)
        r = c.run_schedule(workload())
        report = check_run(r)
        assert report.ok, report.summary()
        assert r.discards >= c.network.duplicates_injected


class TestDedupIsObservationallyClean:
    """With receiver-side dedup, a lossy-duplicating network must be
    indistinguishable from a clean one: the duplicate-injection RNG is
    independent of the primary latency stream, and dedup drops
    duplicates *before* any trace event is recorded, so the serialized
    traces match byte for byte."""

    @pytest.mark.parametrize("protocol", ["optp", "anbkh"])
    @pytest.mark.parametrize("seed", [5, 9])
    def test_deduped_run_matches_duplicate_free_run(self, protocol, seed):
        from repro.sim.serialize import trace_to_jsonl

        def run(prob):
            c = SimCluster(protocol, 4, latency=SeededLatency(seed),
                           duplicate_prob=prob, dedup=True)
            r = c.run_schedule(workload(seed))
            return c, r

        c_clean, r_clean = run(0.0)
        c_dup, r_dup = run(0.4)
        assert c_dup.network.duplicates_injected > 0
        dropped = sum(n.duplicates_dropped for n in c_dup.nodes)
        assert dropped == c_dup.network.duplicates_injected
        assert sum(n.duplicates_dropped for n in c_clean.nodes) == 0
        assert trace_to_jsonl(r_dup.trace) == trace_to_jsonl(r_clean.trace)
        assert r_dup.stores == r_clean.stores
        # protocol-level traffic is unchanged (injection is a network
        # artifact, not a protocol send)
        assert r_dup.messages_sent == r_clean.messages_sent


class TestDedupMechanics:
    def test_zero_prob_injects_nothing(self):
        c = make_cluster(dedup=True)
        c.run_schedule(workload())
        assert c.network.duplicates_injected == 0
        assert sum(n.duplicates_dropped for n in c.nodes) == 0

    def test_prob_validated(self):
        from repro.sim.engine import Engine
        from repro.sim.latency import ConstantLatency
        from repro.sim.network import Network

        with pytest.raises(ValueError):
            Network(Engine(), ConstantLatency(1.0), lambda d, m: None,
                    duplicate_prob=1.5)

    def test_deterministic_duplication(self):
        runs = []
        for _ in range(2):
            c = make_cluster(duplicate_prob=0.3, dedup=True)
            c.run_schedule(workload())
            runs.append(c.network.duplicates_injected)
        assert runs[0] == runs[1] > 0
