"""Fault-injection extension tests (crash-stop; beyond the paper's
failure-free model).

The interesting contrast: broadcast-based protocols (OptP, ANBKH) keep
serving the survivors after a crash, while the token protocol's
propagation halts as soon as the token reaches (or is held by) the dead
process -- liveness hinges on the ring.
"""

import pytest

from repro.analysis.checker import check_safety
from repro.model.legality import is_causally_consistent
from repro.sim import ConstantLatency, SimCluster
from repro.workloads import Schedule, ScheduledOp, WriteOp


def crash_schedule():
    """p0 writes before and after p2's crash at t=5."""
    return Schedule.of(
        [
            ScheduledOp(0.0, 0, WriteOp("x", "before")),
            ScheduledOp(10.0, 0, WriteOp("x", "after")),
            ScheduledOp(10.5, 1, WriteOp("y", "also-after")),
        ]
    )


class TestValidation:
    def test_crash_requires_deadline(self):
        with pytest.raises(ValueError, match="deadline"):
            SimCluster("optp", 3, crashes={2: 5.0})

    def test_crash_process_range(self):
        with pytest.raises(ValueError, match="out of range"):
            SimCluster("optp", 3, crashes={7: 5.0}, deadline=20.0)

    def test_negative_crash_time(self):
        with pytest.raises(ValueError, match=">= 0"):
            SimCluster("optp", 3, crashes={1: -1.0}, deadline=20.0)


class TestBroadcastProtocolsSurvive:
    @pytest.mark.parametrize("proto", ["optp", "anbkh"])
    def test_survivors_fully_converge(self, proto):
        c = SimCluster(proto, 3, latency=ConstantLatency(1.0),
                       crashes={2: 5.0}, deadline=30.0)
        r = c.run_schedule(crash_schedule())
        # survivors applied everything
        for wid in r.trace.writes_issued():
            for k in (0, 1):
                assert r.trace.apply_event(k, wid) is not None, (wid, k)
        # the crashed process got only the pre-crash write
        assert r.stores[2].get("x", (None, None))[0] == "before"
        assert "y" not in r.stores[2]
        # survivors' behaviour stays safe and legal
        assert not check_safety(r)
        assert is_causally_consistent(r.history)

    def test_crashed_node_issues_nothing(self):
        sched = Schedule.of(
            [
                ScheduledOp(0.0, 2, WriteOp("a", 1)),   # before crash
                ScheduledOp(9.0, 2, WriteOp("b", 2)),   # after crash: dropped
            ]
        )
        c = SimCluster("optp", 3, latency=ConstantLatency(1.0),
                       crashes={2: 5.0}, deadline=30.0)
        r = c.run_schedule(sched)
        assert r.writes_issued == 1
        assert r.stores[0]["a"] == r.stores[1]["a"]
        assert "b" not in r.stores[0]


class TestTokenProtocolDies:
    def test_propagation_halts_after_crash(self):
        """Once the ring is broken, post-crash writes never propagate:
        the structural liveness weakness of token-based WS."""
        c = SimCluster("jimenez-token", 3, latency=ConstantLatency(1.0),
                       crashes={2: 5.0}, deadline=60.0)
        r = c.run_schedule(crash_schedule())
        after_writes = [
            w for w in r.trace.writes_issued()
            if r.history.write_by_id(w).value in ("after", "also-after")
        ]
        assert after_writes, "post-crash writes should still be issued"
        # issued locally, but never applied at the other survivor
        for wid in after_writes:
            other = 1 - wid.process  # the other survivor (0 or 1)
            assert r.trace.apply_event(other, wid) is None

    def test_pre_crash_rounds_did_propagate(self):
        c = SimCluster("jimenez-token", 3, latency=ConstantLatency(0.5),
                       crashes={2: 20.0}, deadline=60.0)
        sched = Schedule.of([ScheduledOp(0.0, 0, WriteOp("x", "early"))])
        r = c.run_schedule(sched)
        wid = r.trace.writes_issued()[0]
        for k in (1, 2):
            assert r.trace.apply_event(k, wid) is not None


class TestDeadlineWithoutCrashes:
    def test_deadline_cuts_long_run(self):
        sched = Schedule.of(
            [ScheduledOp(float(k), 0, WriteOp("x", k)) for k in range(5)]
        )
        c = SimCluster("optp", 2, latency=ConstantLatency(100.0),
                       deadline=2.0)
        r = c.run_schedule(sched)
        assert r.duration <= 2.0 + 1e-9
        # messages were still in flight; applies incomplete by design
        assert r.remote_applies < r.writes_issued
