"""Tests for the load-dependent (congestion) latency option."""

import pytest

from repro.analysis import check_run
from repro.sim import ConstantLatency, SimCluster
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.core.base import UpdateMessage
from repro.model.operations import WriteId
from repro.workloads import write_burst_schedule


def msg(seq):
    return UpdateMessage(sender=0, wid=WriteId(0, seq), variable="x", value=seq)


class TestNetworkCongestion:
    def test_validation(self):
        e = Engine()
        with pytest.raises(ValueError):
            Network(e, ConstantLatency(1.0), lambda d, m: None,
                    congestion_factor=-0.1)

    def test_later_sends_slowed_by_in_flight(self):
        e = Engine()
        net = Network(e, ConstantLatency(1.0), lambda d, m: None,
                      congestion_factor=0.5)
        a1 = net.send(0, 1, msg(1))   # 0 in flight -> delay 1.0
        a2 = net.send(0, 1, msg(2))   # 1 in flight -> delay 1.5
        a3 = net.send(0, 1, msg(3))   # 2 in flight -> delay 2.0
        assert a1 == pytest.approx(1.0)
        assert a2 == pytest.approx(1.5)
        assert a3 == pytest.approx(2.0)

    def test_zero_factor_is_neutral(self):
        e = Engine()
        net = Network(e, ConstantLatency(1.0), lambda d, m: None)
        assert net.send(0, 1, msg(1)) == pytest.approx(1.0)
        assert net.send(0, 1, msg(2)) == pytest.approx(1.0)


class TestClusterUnderCongestion:
    def test_burst_still_verified(self):
        sched = write_burst_schedule(3, bursts=2, burst_size=5)
        c = SimCluster("optp", 3, latency=ConstantLatency(0.5),
                       congestion_factor=0.2)
        r = c.run_schedule(sched)
        report = check_run(r)
        assert report.ok, report.summary()
        assert not report.unnecessary_delays

    def test_congestion_stretches_run(self):
        sched = write_burst_schedule(3, bursts=1, burst_size=8)
        fast = SimCluster("optp", 3, latency=ConstantLatency(0.5))
        slow = SimCluster("optp", 3, latency=ConstantLatency(0.5),
                          congestion_factor=0.3)
        r_fast = fast.run_schedule(sched)
        r_slow = slow.run_schedule(
            write_burst_schedule(3, bursts=1, burst_size=8))
        assert r_slow.duration > r_fast.duration
