"""Unit tests for the delivery scheduler subsystem
(:mod:`repro.sim.scheduler`): mode resolution, dependency-indexed
wakeups, re-parking, dead-parking, and order parity with the legacy
re-scan."""

import pytest

from repro.core.optp import OptPProtocol
from repro.protocols.anbkh import ANBKHProtocol
from repro.protocols.gossip import GossipOptPProtocol
from repro.protocols.jimenez import JimenezTokenProtocol
from repro.protocols.partial import PartialReplicationProtocol, ReplicationMap
from repro.protocols.sequencer import SequencerProtocol
from repro.protocols.ws_receiver import WSReceiverProtocol
from repro.sim.node import Node
from repro.sim.scheduler import (
    IndexedScheduler,
    LegacyScanScheduler,
    make_scheduler,
    supports_indexing,
)
from repro.sim.trace import Trace


def make_node(proto, scheduler="auto"):
    trace = Trace(proto.n_processes)
    node = Node(proto, trace, clock=lambda: 0.0,
                dispatch=lambda *a: None, scheduler=scheduler)
    return node, trace


def msg_from(sender_proto, var, value):
    return sender_proto.write(var, value).outgoing[0].message


class TestModeResolution:
    @pytest.mark.parametrize("proto_cls", [
        OptPProtocol, ANBKHProtocol, SequencerProtocol,
    ])
    def test_dep_enumerable_protocols_get_the_index(self, proto_cls):
        p = proto_cls(1, 4)
        assert supports_indexing(p)
        assert isinstance(make_scheduler(p, "auto"), IndexedScheduler)
        assert isinstance(make_scheduler(p, "indexed"), IndexedScheduler)
        assert isinstance(make_scheduler(p, "legacy"), LegacyScanScheduler)

    def test_partial_replication_gets_the_index(self):
        rmap = ReplicationMap.full(["x"], 4)
        p = PartialReplicationProtocol(1, 4, rmap)
        assert supports_indexing(p)
        assert isinstance(make_scheduler(p), IndexedScheduler)

    @pytest.mark.parametrize("proto_cls", [
        WSReceiverProtocol, JimenezTokenProtocol, GossipOptPProtocol,
    ])
    def test_non_enumerable_protocols_fall_back(self, proto_cls):
        p = proto_cls(1, 4)
        assert not supports_indexing(p)
        # even an explicit "indexed" request degrades transparently
        assert isinstance(make_scheduler(p, "indexed"), LegacyScanScheduler)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler mode"):
            make_scheduler(OptPProtocol(0, 2), "eager")
        with pytest.raises(ValueError, match="unknown scheduler mode"):
            Node(OptPProtocol(0, 2), Trace(2), clock=lambda: 0.0,
                 dispatch=lambda *a: None, scheduler="eager")

    def test_indexed_scheduler_rejects_legacy_protocols(self):
        with pytest.raises(TypeError, match="missing_deps"):
            IndexedScheduler(WSReceiverProtocol(0, 2))

    def test_node_exposes_resolved_mode(self):
        node, _ = make_node(OptPProtocol(1, 3))
        assert node.scheduler_mode == "indexed"
        node, _ = make_node(WSReceiverProtocol(1, 3))
        assert node.scheduler_mode == "legacy"


class TestIndexedWakeups:
    def test_single_sender_chain_wakes_each_message_once(self):
        """Reversed delivery of a same-sender chain: every buffered
        message has exactly one missing dependency (its predecessor),
        so each is woken exactly once -- the O(1)-per-apply claim."""
        depth = 50
        sender = OptPProtocol(0, 2)
        msgs = [msg_from(sender, "x", k) for k in range(depth + 1)]
        node, trace = make_node(OptPProtocol(1, 2))
        for m in reversed(msgs[1:]):
            node.receive(m)
        assert node.buffered_count == depth
        node.receive(msgs[0])
        assert node.buffered_count == 0
        assert node.scheduler.wakeups == depth
        assert [w.seq for w in trace.apply_order(1)] == list(range(1, depth + 2))

    def test_multi_dep_message_reparks_under_next_dep(self):
        """A write depending on two other senders is woken once per
        dependency: first wake re-parks it, second wake applies it."""
        n = 4
        p0 = OptPProtocol(0, n)
        p1 = OptPProtocol(1, n)
        p2 = OptPProtocol(2, n)
        m_a = msg_from(p0, "a", 1)
        m_b = msg_from(p1, "b", 1)
        # p2 reads both, then writes: its message depends on both
        p2.apply_update(m_a)
        p2.read("a")
        p2.apply_update(m_b)
        p2.read("b")
        m_c = msg_from(p2, "c", 1)

        node, trace = make_node(OptPProtocol(3, n))
        node.receive(m_c)
        assert node.buffered_count == 1
        node.receive(m_a)   # wakes m_c once; still missing m_b
        assert node.buffered_count == 1
        node.receive(m_b)   # second wake applies it
        assert node.buffered_count == 0
        assert node.scheduler.wakeups == 2

    def test_duplicate_of_applied_write_is_dead_parked(self):
        """A duplicate whose predicate can never hold again is parked
        forever without being re-examined -- the legacy path's wedged
        buffer, minus the repeated re-classification."""
        sender = OptPProtocol(0, 2)
        m1 = msg_from(sender, "x", 1)
        node, _ = make_node(OptPProtocol(1, 2))
        node.receive(m1)
        assert node.buffered_count == 0
        node.receive(m1)            # duplicate: BUFFER, no future deps
        assert node.buffered_count == 1
        assert node.scheduler.dead_parked == 1
        # further traffic never wakes it
        node.receive(msg_from(sender, "x", 2))
        assert node.buffered_count == 1
        assert node.pending == [m1]

    def test_sequencer_gap_waits_on_stamp_order(self):
        seq = SequencerProtocol(0, 3)
        m0 = seq._stamp_and_broadcast(seq.next_wid(), "x", 0)[0].message
        m1 = seq._stamp_and_broadcast(seq.next_wid(), "x", 1)[0].message
        m2 = seq._stamp_and_broadcast(seq.next_wid(), "x", 2)[0].message
        node, trace = make_node(SequencerProtocol(1, 3))
        node.receive(m2)
        node.receive(m1)
        assert node.buffered_count == 2
        node.receive(m0)
        assert node.buffered_count == 0
        assert trace.apply_order(1) == [m0.wid, m1.wid, m2.wid]

    def test_crash_clears_the_index(self):
        sender = OptPProtocol(0, 2)
        msg_from(sender, "x", 1)          # never delivered
        m2 = msg_from(sender, "x", 2)
        node, _ = make_node(OptPProtocol(1, 2))
        node.receive(m2)
        assert node.buffered_count == 1
        node.crash()
        assert node.buffered_count == 0
        assert node.pending == []


class TestOrderParity:
    def test_repark_preserves_buffer_order(self):
        """M1 (two deps) buffered before M2 (one shared dep): when the
        shared dep fires last, both paths apply M1 before M2 -- the
        indexed path must not let M1's re-parking push it behind M2."""
        n = 4

        def build():
            p0 = OptPProtocol(0, n)
            p1 = OptPProtocol(1, n)
            p2 = OptPProtocol(2, n)
            m_a = msg_from(p0, "a", 1)
            m_b = msg_from(p1, "b", 1)
            # m1 depends on both m_a and m_b; parks under m_a first
            p2.apply_update(m_a)
            p2.read("a")
            p2.apply_update(m_b)
            p2.read("b")
            m1 = msg_from(p2, "c", 1)
            # m2 (same-sender successor of m_b) depends on m_b only
            m2 = msg_from(p1, "d", 2)
            return m1, m2, m_a, m_b

        orders = {}
        for mode in ("legacy", "indexed"):
            m1, m2, m_a, m_b = build()
            node, trace = make_node(OptPProtocol(3, n), scheduler=mode)
            node.receive(m1)    # parks under m_a's key
            node.receive(m2)    # parks under m_b's key
            node.receive(m_a)   # wakes m1 -> still missing m_b -> re-park
            node.receive(m_b)   # enables both; m1 buffered first
            assert node.buffered_count == 0
            orders[mode] = trace.apply_order(3)
        assert orders["legacy"] == orders["indexed"]
        # m1 (buffered first) applies before m2
        applied = orders["legacy"]
        assert applied.index(m1.wid) < applied.index(m2.wid)
