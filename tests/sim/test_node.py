"""Unit tests for the Node substrate component (buffering, draining,
crash behaviour, out-of-band applies, dispatch plumbing)."""

import pytest

from repro.core.optp import OptPProtocol
from repro.model.operations import BOTTOM, WriteId
from repro.protocols.base import BROADCAST, Outgoing
from repro.sim.node import Node
from repro.sim.trace import EventKind, Trace


def make_node(i=1, n=3, proto_cls=OptPProtocol, **kw):
    trace = Trace(n)
    sent = []
    now = [0.0]
    node = Node(
        proto_cls(i, n),
        trace,
        clock=lambda: now[0],
        dispatch=lambda sender, outgoing: sent.append((sender, list(outgoing))),
        **kw,
    )
    return node, trace, sent, now


def msg_from(sender_proto, var, value):
    return sender_proto.write(var, value).outgoing[0].message


class TestOperations:
    def test_write_records_write_and_send(self):
        node, trace, sent, _ = make_node()
        wid = node.do_write("x", 5)
        kinds = [ev.kind for ev in trace.process_events(1)]
        assert kinds == [EventKind.WRITE, EventKind.SEND]
        assert sent and sent[0][0] == 1
        assert wid == WriteId(1, 1)

    def test_write_generates_fresh_value(self):
        node, trace, _, _ = make_node()
        node.do_write("x")
        ev = trace.process_events(1)[0]
        assert ev.value == "v[p1#1]"

    def test_read_records_return(self):
        node, trace, _, _ = make_node()
        value = node.do_read("x")
        assert value is BOTTOM
        ev = trace.process_events(1)[0]
        assert ev.kind is EventKind.RETURN and ev.read_from is None


class TestBufferingAndDrain:
    def test_out_of_order_buffers_then_drains(self):
        node, trace, _, _ = make_node()
        sender = OptPProtocol(0, 3)
        m1 = msg_from(sender, "x", 1)
        m2 = msg_from(sender, "x", 2)
        m3 = msg_from(sender, "x", 3)
        node.receive(m3)
        node.receive(m2)
        assert node.buffered_count == 2
        assert len(trace.delayed(1)) == 2
        node.receive(m1)  # unblocks the whole chain
        assert node.buffered_count == 0
        assert trace.apply_order(1) == [WriteId(0, 1), WriteId(0, 2),
                                        WriteId(0, 3)]

    def test_drain_cascades_across_senders(self):
        """Applying one buffered message can unblock another sender's."""
        node, trace, _, _ = make_node(i=2)
        p0 = OptPProtocol(0, 3)
        p1 = OptPProtocol(1, 3)
        m_a = msg_from(p0, "x", "a")
        p1.apply_update(m_a)
        p1.read("x")
        m_b = msg_from(p1, "y", "b")
        node.receive(m_b)      # needs a: buffered
        assert node.buffered_count == 1
        node.receive(m_a)      # applies, then drain applies b
        assert node.buffered_count == 0
        assert trace.apply_order(2) == [WriteId(0, 1), WriteId(1, 1)]

    def test_discard_during_drain(self):
        """WS-receiver: a buffered message can flip to DISCARD while
        draining, when an also-buffered later same-variable write gets
        overwrite-applied first.

        Construction: p0 writes y then x; p1 (having read both) writes
        x again (the trigger).  The receiver gets trigger, then p0's x,
        then p0's y -- applying y drains the trigger via overwrite
        (skipping p0's x), which turns the still-buffered p0-x message
        into a discard."""
        from repro.protocols.ws_receiver import WSReceiverProtocol

        node, trace, _, _ = make_node(i=2, proto_cls=WSReceiverProtocol)
        p0 = WSReceiverProtocol(0, 3)
        p1 = WSReceiverProtocol(1, 3)
        m_y = msg_from(p0, "y", 1)
        m_x = msg_from(p0, "x", 2)
        p1.apply_update(m_y)
        p1.apply_update(m_x)
        p1.read("x")
        trigger = msg_from(p1, "x", 3)

        node.receive(trigger)   # buffered: p0's y (wrong var) missing
        node.receive(m_x)       # buffered: p0's y missing
        assert node.buffered_count == 2
        node.receive(m_y)       # applies; drain skip-applies trigger...
        assert node.buffered_count == 0
        # ...and m_x was discarded during that drain
        assert len(trace.discarded(2)) == 1
        assert trace.apply_event(2, WriteId(0, 2)) is None
        assert node.protocol.store_get("x") == (3, WriteId(1, 1))


class TestCrash:
    def test_crashed_node_ignores_everything(self):
        node, trace, sent, _ = make_node()
        sender = OptPProtocol(0, 3)
        m1 = msg_from(sender, "x", 1)
        node.crash()
        assert node.do_write("y", 1) is None
        assert node.do_read("x") is None
        node.receive(m1)
        assert len(trace.process_events(1)) == 0
        assert sent == []

    def test_crash_clears_buffer(self):
        node, _, _, _ = make_node()
        sender = OptPProtocol(0, 3)
        msg_from(sender, "x", 1)          # m1 never delivered
        m2 = msg_from(sender, "x", 2)
        node.receive(m2)
        assert node.buffered_count == 1
        node.crash()
        assert node.buffered_count == 0


class TestOutOfBandApplies:
    def test_recorder_routes_to_trace(self):
        from repro.protocols.jimenez import JimenezTokenProtocol
        from repro.protocols.base import ControlMessage
        from repro.protocols.jimenez import BATCH_KIND

        node, trace, _, _ = make_node(proto_cls=JimenezTokenProtocol)
        batch = ControlMessage(
            sender=0, kind=BATCH_KIND,
            payload={"batch_seq": 0, "writes": ((WriteId(0, 1), "x", 7),)},
        )
        node.receive(batch)
        ev = trace.apply_event(1, WriteId(0, 1))
        assert ev is not None and ev.value == 7

    def test_control_followups_dispatched(self):
        from repro.protocols.jimenez import JimenezTokenProtocol, TOKEN_KIND
        from repro.protocols.base import ControlMessage

        node, _, sent, _ = make_node(proto_cls=JimenezTokenProtocol)
        node.protocol.write("x", 1)
        token = ControlMessage(sender=0, kind=TOKEN_KIND,
                               payload={"batch_seq": 0})
        node.receive(token)
        assert sent, "token handling must emit batch + token"
        kinds = [o.message.kind for o in sent[0][1]]
        assert "batch" in kinds and "token" in kinds


class TestCallbacks:
    def test_on_write_and_on_apply_fire(self):
        writes = []
        applies = []
        trace = Trace(2)
        node = Node(
            OptPProtocol(1, 2),
            trace,
            clock=lambda: 0.0,
            dispatch=lambda *a: None,
            on_write=lambda local: writes.append(local),
            on_remote_apply=lambda: applies.append(1),
        )
        node.do_write("x", 1)
        assert writes == [True]
        sender = OptPProtocol(0, 2)
        node.receive(msg_from(sender, "y", 2))
        assert applies == [1]

    def test_state_snapshots_opt_in(self):
        node, trace, _, _ = make_node(record_state=True)
        node.do_write("x", 1)
        ev = trace.process_events(1)[0]
        assert ev.state is not None and "write_co" in ev.state
        node2, trace2, _, _ = make_node(record_state=False)
        node2.do_write("x", 1)
        assert trace2.process_events(1)[0].state is None
