"""Unit tests for latency models and the network substrate."""

import pytest

from repro.core.base import ControlMessage, UpdateMessage
from repro.model.operations import WriteId
from repro.sim.engine import Engine
from repro.sim.latency import (
    ConstantLatency,
    ExponentialLatency,
    MatrixLatency,
    ScriptedLatency,
    SeededLatency,
    UniformLatency,
    message_key,
)
from repro.sim.network import Network, estimate_size


def msg(sender=0, seq=1, var="x", value=1, payload=None):
    return UpdateMessage(
        sender=sender,
        wid=WriteId(sender, seq),
        variable=var,
        value=value,
        payload=payload or {},
    )


class TestMessageKey:
    def test_update_keyed_by_wid(self):
        assert message_key(msg(0, 1)) == message_key(msg(0, 1, value=99))
        assert message_key(msg(0, 1)) != message_key(msg(0, 2))

    def test_control_keyed_by_kind_and_seq(self):
        c1 = ControlMessage(sender=0, kind="token", payload={"batch_seq": 3})
        c2 = ControlMessage(sender=0, kind="token", payload={"batch_seq": 4})
        assert message_key(c1) != message_key(c2)
        assert message_key(c1) == message_key(
            ControlMessage(sender=0, kind="token", payload={"batch_seq": 3})
        )


class TestModels:
    def test_constant(self):
        m = ConstantLatency(2.5)
        assert m.latency(0, 1, msg()) == 2.5
        with pytest.raises(ValueError):
            ConstantLatency(0)

    def test_matrix(self):
        m = MatrixLatency([[0, 1], [2, 0]])
        assert m.latency(0, 1, msg()) == 1
        assert m.latency(1, 0, msg()) == 2
        with pytest.raises(ValueError):
            MatrixLatency([[0, 1]])
        with pytest.raises(ValueError):
            MatrixLatency([[0, 0], [1, 0]])

    def test_uniform_range_and_fork(self):
        m = UniformLatency(1.0, 2.0, seed=7)
        draws = [m.latency(0, 1, msg()) for _ in range(100)]
        assert all(1.0 <= d <= 2.0 for d in draws)
        # fork resets to the initial seed state
        m2 = m.fork()
        assert [m2.latency(0, 1, msg()) for _ in range(100)] == draws
        with pytest.raises(ValueError):
            UniformLatency(0, 1)

    def test_exponential_positive(self):
        m = ExponentialLatency(mean=1.0, seed=3)
        draws = [m.latency(0, 1, msg()) for _ in range(100)]
        assert all(d > 0 for d in draws)
        assert m.fork().latency(0, 1, msg()) == ExponentialLatency(1.0, seed=3).latency(0, 1, msg())
        with pytest.raises(ValueError):
            ExponentialLatency(0)

    def test_scripted(self):
        key = message_key(msg(0, 1))
        m = ScriptedLatency({(key, 2): 9.0}, default=1.0)
        assert m.latency(0, 2, msg(0, 1)) == 9.0
        assert m.latency(0, 1, msg(0, 1)) == 1.0   # other dest -> default
        assert m.latency(0, 2, msg(0, 2)) == 1.0   # other write -> default
        with pytest.raises(ValueError):
            ScriptedLatency({}, default=0)
        with pytest.raises(ValueError):
            ScriptedLatency({(key, 1): -1.0})

    def test_seeded_is_deterministic_per_message(self):
        m1 = SeededLatency(seed=5)
        m2 = SeededLatency(seed=5)
        a = m1.latency(0, 1, msg(0, 1))
        assert a == m2.latency(0, 1, msg(0, 1))
        # independent of payload (protocols differ there!)
        assert a == m1.latency(0, 1, msg(0, 1, payload={"write_co": (9, 9)}))
        # but different per dest / per write / per seed
        assert a != m1.latency(0, 2, msg(0, 1)) or a != m1.latency(0, 1, msg(0, 2))
        assert SeededLatency(seed=6).latency(0, 1, msg(0, 1)) != a

    def test_seeded_exponential(self):
        m = SeededLatency(seed=1, dist="exponential", mean=2.0)
        assert m.latency(0, 1, msg()) > 0
        with pytest.raises(ValueError):
            SeededLatency(seed=1, dist="weibull")

    def test_seeded_validation(self):
        with pytest.raises(ValueError):
            SeededLatency(seed=1, dist="uniform", lo=0, hi=1)
        with pytest.raises(ValueError):
            SeededLatency(seed=1, dist="exponential", mean=-1)


class TestNetwork:
    def _net(self, fifo=False, latency=None):
        engine = Engine()
        delivered = []
        net = Network(
            engine,
            latency or ConstantLatency(1.0),
            lambda dest, m: delivered.append((engine.now, dest, m)),
            fifo=fifo,
        )
        return engine, net, delivered

    def test_delivers_exactly_once(self):
        engine, net, delivered = self._net()
        m = msg()
        net.send(0, 1, m)
        engine.run()
        assert len(delivered) == 1
        assert delivered[0] == (1.0, 1, m)
        assert net.messages_sent == 1

    def test_no_self_send(self):
        _, net, _ = self._net()
        with pytest.raises(ValueError):
            net.send(0, 0, msg())

    def test_non_fifo_can_reorder(self):
        class Flip(ConstantLatency):
            def __init__(self):
                super().__init__(1.0)
                self.calls = 0

            def latency(self, s, d, m):
                self.calls += 1
                return 5.0 if self.calls == 1 else 1.0

        engine, net, delivered = self._net(latency=Flip())
        net.send(0, 1, msg(0, 1))
        net.send(0, 1, msg(0, 2))
        engine.run()
        assert [d[2].wid.seq for d in delivered] == [2, 1]  # reordered

    def test_fifo_preserves_order(self):
        class Flip(ConstantLatency):
            def __init__(self):
                super().__init__(1.0)
                self.calls = 0

            def latency(self, s, d, m):
                self.calls += 1
                return 5.0 if self.calls == 1 else 1.0

        engine, net, delivered = self._net(fifo=True, latency=Flip())
        net.send(0, 1, msg(0, 1))
        net.send(0, 1, msg(0, 2))
        engine.run()
        assert [d[2].wid.seq for d in delivered] == [1, 2]

    def test_rejects_nonpositive_model_delay(self):
        class Broken(ConstantLatency):
            def latency(self, s, d, m):
                return 0.0

        _, net, _ = self._net(latency=Broken())
        with pytest.raises(ValueError):
            net.send(0, 1, msg())


class TestSizeEstimate:
    def test_vector_payload_counts(self):
        small = estimate_size(msg(payload={"write_co": (1, 2, 3)}))
        large = estimate_size(msg(payload={"write_co": (1,) * 30}))
        assert large > small

    def test_ws_receiver_payload_costs_more(self):
        plain = estimate_size(msg(payload={"write_co": (1, 2, 3)}))
        ws = estimate_size(
            msg(payload={"write_co": (1, 2, 3),
                         "var_past": (("x", (1, 0, 0)), ("y", (0, 2, 0)))})
        )
        assert ws > plain

    def test_handles_strings_and_unknowns(self):
        base = estimate_size(msg(payload={}))
        # exact codec sizing: the string's bytes show up in the size
        assert estimate_size(msg(payload={"s": "hello"})) >= base + 5
        # values outside the codec's tagged universe fall back to the
        # heuristic (base 24 + 16 per opaque value)
        assert estimate_size(msg(payload={"o": object()})) == 40

    def test_exact_sizes_match_codec(self):
        from repro.serve.codec import encode_message

        for payload in ({}, {"write_co": (1, 2, 3)}, {"s": "hello"}):
            m = msg(payload=payload)
            assert estimate_size(m) == len(encode_message(m))
