"""Integration tests: protocols running on the simulated substrate."""

import pytest

from repro.model.legality import is_causally_consistent
from repro.model.operations import WriteId
from repro.sim import (
    ConstantLatency,
    EngineLimitError,
    EventKind,
    MatrixLatency,
    ScriptedLatency,
    SeededLatency,
    SimCluster,
    run_programs,
    run_schedule,
)
from repro.sim.latency import message_key
from repro.core.base import UpdateMessage
from repro.workloads.ops import (
    Program,
    ReadOp,
    ReadStep,
    Schedule,
    ScheduledOp,
    WaitReadStep,
    WriteOp,
    WriteStep,
)

ALL_PROTOCOLS = ["optp", "anbkh", "ws-receiver", "jimenez-token"]
CLASS_P = ["optp", "anbkh"]


def simple_schedule():
    return Schedule.of(
        [
            ScheduledOp(0.0, 0, WriteOp("x", "a")),
            ScheduledOp(2.0, 1, ReadOp("x")),
            ScheduledOp(2.5, 1, WriteOp("y", "b")),
            ScheduledOp(5.0, 2, ReadOp("y")),
        ]
    )


class TestBasicRuns:
    @pytest.mark.parametrize("proto", ALL_PROTOCOLS)
    def test_run_completes_and_history_consistent(self, proto):
        r = run_schedule(proto, 3, simple_schedule(), latency=SeededLatency(1))
        assert r.writes_issued == 2
        assert is_causally_consistent(r.history)

    @pytest.mark.parametrize("proto", CLASS_P)
    def test_class_p_liveness(self, proto):
        """Every write applied at every process (Theorem 5)."""
        r = run_schedule(proto, 3, simple_schedule(), latency=SeededLatency(1))
        for wid in r.trace.writes_issued():
            for k in range(3):
                assert r.trace.apply_event(k, wid) is not None, (wid, k)

    @pytest.mark.parametrize("proto", ALL_PROTOCOLS)
    def test_deterministic_replay(self, proto):
        r1 = run_schedule(proto, 3, simple_schedule(), latency=SeededLatency(5))
        r2 = run_schedule(proto, 3, simple_schedule(), latency=SeededLatency(5))
        assert [str(e) for e in r1.trace.events] == [str(e) for e in r2.trace.events]

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            SimCluster("nope", 3)

    def test_single_use(self):
        c = SimCluster("optp", 2)
        c.run_schedule(Schedule.of([ScheduledOp(0.0, 0, WriteOp("x", 1))]))
        with pytest.raises(RuntimeError, match="single-use"):
            c.run_schedule(Schedule.of([ScheduledOp(0.0, 0, WriteOp("x", 1))]))

    def test_schedule_process_range_checked(self):
        with pytest.raises(ValueError, match="references process"):
            SimCluster("optp", 2).run_schedule(
                Schedule.of([ScheduledOp(0.0, 5, WriteOp("x", 1))])
            )

    def test_empty_schedule(self):
        r = run_schedule("optp", 2, Schedule.of([]))
        assert len(r.trace) == 0 and r.writes_issued == 0


class TestH1ClosedLoop:
    """Reproduce the paper's Example 1 history with a closed-loop workload."""

    def programs(self):
        return [
            Program.of(WriteStep("x1", "a"), WriteStep("x1", "c", delay=0.5)),
            Program.of(WaitReadStep("x1", "a", poll=0.3), WriteStep("x2", "b")),
            Program.of(WaitReadStep("x2", "b", poll=0.3), WriteStep("x2", "d")),
        ]

    @pytest.mark.parametrize("proto", CLASS_P)
    def test_h1_emerges(self, proto):
        r = run_programs(proto, 3, self.programs(), latency=ConstantLatency(1.0))
        assert is_causally_consistent(r.history)
        writes = {w.value: w for w in r.history.writes()}
        assert set(writes) == {"a", "b", "c", "d"}
        co = r.history.causal_order
        assert co.precedes(writes["a"], writes["b"])
        assert co.precedes(writes["b"], writes["d"])

    def test_wait_read_gives_up(self):
        programs = [
            Program.of(WaitReadStep("never", 42, poll=0.1, max_polls=5)),
            Program.of(),
        ]
        with pytest.raises(RuntimeError, match="gave up"):
            run_programs("optp", 2, programs)

    def test_program_count_checked(self):
        with pytest.raises(ValueError, match="programs"):
            run_programs("optp", 3, [Program.of()])


class TestDelayBehaviour:
    def fig3_latency(self):
        """Force: at p2, message for b arrives before message for c."""
        return ScriptedLatency(
            {
                (("update", WriteId(0, 1)), 1): 1.0,   # a -> p1 fast
                (("update", WriteId(0, 1)), 2): 1.0,   # a -> p2 fast
                (("update", WriteId(0, 2)), 1): 1.0,   # c -> p1 fast
                (("update", WriteId(0, 2)), 2): 20.0,  # c -> p2 SLOW
                (("update", WriteId(1, 1)), 2): 1.0,   # b -> p2 fast
            },
            default=1.0,
        )

    def fig3_schedule(self):
        return Schedule.of(
            [
                ScheduledOp(0.0, 0, WriteOp("x1", "a")),
                ScheduledOp(0.5, 0, WriteOp("x1", "c")),
                ScheduledOp(3.0, 1, ReadOp("x1")),   # reads a (c applied too,
                ScheduledOp(3.5, 1, WriteOp("x2", "b")),  # but value is c...)
            ]
        )

    def test_anbkh_false_causality_vs_optp(self):
        """Under the Figure 3 arrival pattern ANBKH delays b at p2 and
        OptP does not."""
        # Figure 3's crux: p1 applies c *after* its read of a but
        # *before* writing b, so ANBKH's send vector for b counts c
        # although b ||co c.  c is sent at t=0.5; latency 2.8 lands it
        # at t=3.3, between the read (3.0) and the write (3.5).
        script = self.fig3_latency()
        script.script[(("update", WriteId(0, 2)), 1)] = 2.8
        sched = self.fig3_schedule()
        r_anbkh = run_schedule("anbkh", 3, sched, latency=script)
        r_optp = run_schedule("optp", 3, sched, latency=script)
        assert is_causally_consistent(r_anbkh.history)
        assert is_causally_consistent(r_optp.history)
        # ANBKH: b waits for c at p2 (false causality) -> 1 delay there.
        assert any(e.wid == WriteId(1, 1) for e in r_anbkh.trace.delayed(2))
        # OptP: b applies on arrival at p2.
        assert not any(e.wid == WriteId(1, 1) for e in r_optp.trace.delayed(2))
        assert r_optp.write_delays < r_anbkh.write_delays

    def test_delay_durations_positive(self):
        script = self.fig3_latency()
        script.script[(("update", WriteId(0, 2)), 1)] = 2.8
        r = run_schedule("anbkh", 3, self.fig3_schedule(), latency=script)
        durations = r.delay_durations()
        assert durations and all(d > 0 for d in durations)


class TestTokenProtocolOnSubstrate:
    def test_quiesces_with_pending_writes(self):
        """Writes issued after the token passed must still propagate."""
        sched = Schedule.of(
            [
                ScheduledOp(0.0, 1, WriteOp("x", "v1")),
                ScheduledOp(10.0, 2, WriteOp("y", "v2")),
            ]
        )
        r = run_schedule("jimenez-token", 3, sched, latency=ConstantLatency(1.0))
        # both writes eventually applied everywhere
        for wid in r.trace.writes_issued():
            for k in range(3):
                assert r.trace.apply_event(k, wid) is not None

    def test_suppression_on_substrate(self):
        """Back-to-back same-variable writes: earlier ones suppressed."""
        sched = Schedule.of(
            [
                ScheduledOp(0.0, 1, WriteOp("x", 1)),
                ScheduledOp(0.1, 1, WriteOp("x", 2)),
                ScheduledOp(0.2, 1, WriteOp("x", 3)),
            ]
        )
        r = run_schedule("jimenez-token", 3, sched, latency=ConstantLatency(1.0))
        assert r.stat_total("suppressed") == 2
        # only the last write reaches the other replicas
        for k in (0, 2):
            assert r.stores[k]["x"] == (3, WriteId(1, 3))
        assert r.trace.apply_event(0, WriteId(1, 1)) is None

    def test_converges(self):
        sched = Schedule.of(
            [ScheduledOp(float(k), k % 3, WriteOp(f"v{k % 2}", k)) for k in range(8)]
        )
        r = run_schedule("jimenez-token", 3, sched, latency=ConstantLatency(0.7))
        assert r.converged()


class TestRunResult:
    def test_summary_fields(self):
        r = run_schedule("optp", 3, simple_schedule())
        s = r.summary()
        assert "optp" in s and "writes=2" in s

    def test_converged_with_total_order(self):
        sched = Schedule.of(
            [
                ScheduledOp(0.0, 0, WriteOp("x", 1)),
                ScheduledOp(50.0, 1, WriteOp("x", 2)),  # after full propagation
            ]
        )
        r = run_schedule("optp", 2, sched, latency=ConstantLatency(1.0))
        assert r.converged()
        assert r.stores[0]["x"] == (2, WriteId(1, 1))

    def test_stat_total_empty_for_optp(self):
        r = run_schedule("optp", 2, simple_schedule().__class__.of(
            [ScheduledOp(0.0, 0, WriteOp("x", 1))]))
        assert r.stat_total("skipped") == 0


class TestWSReceiverOnSubstrate:
    def test_overwrite_skips_on_reordered_channel(self):
        """w(x)1 then w(x)2 with the first message delayed: the receiver
        applies the second immediately (skip) and discards the first on
        arrival; OptP on the same schedule must buffer."""
        script = ScriptedLatency(
            {
                (("update", WriteId(0, 1)), 1): 30.0,  # first write slow
                (("update", WriteId(0, 2)), 1): 1.0,   # second fast
            },
            default=1.0,
        )
        sched = Schedule.of(
            [
                ScheduledOp(0.0, 0, WriteOp("x", 1)),
                ScheduledOp(0.5, 0, WriteOp("x", 2)),
            ]
        )
        r_ws = run_schedule("ws-receiver", 2, sched, latency=script)
        r_optp = run_schedule("optp", 2, sched, latency=script)
        assert r_ws.write_delays == 0
        assert r_ws.stat_total("skipped") == 1
        assert r_ws.discards == 1
        assert r_optp.write_delays == 1
        # both end with the same final value
        assert r_ws.stores[1]["x"] == r_optp.stores[1]["x"] == (2, WriteId(0, 2))
