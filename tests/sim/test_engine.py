"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, EngineLimitError


class TestScheduling:
    def test_runs_in_time_order(self):
        e = Engine()
        out = []
        e.schedule_at(2.0, lambda: out.append("b"))
        e.schedule_at(1.0, lambda: out.append("a"))
        e.schedule_at(3.0, lambda: out.append("c"))
        e.run()
        assert out == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        e = Engine()
        out = []
        for tag in "abc":
            e.schedule_at(1.0, lambda t=tag: out.append(t))
        e.run()
        assert out == ["a", "b", "c"]

    def test_now_advances(self):
        e = Engine()
        seen = []
        e.schedule_at(5.0, lambda: seen.append(e.now))
        e.run()
        assert seen == [5.0]
        assert e.now == 5.0

    def test_schedule_after(self):
        e = Engine()
        seen = []
        e.schedule_at(2.0, lambda: e.schedule_after(3.0, lambda: seen.append(e.now)))
        e.run()
        assert seen == [5.0]

    def test_cannot_schedule_in_past(self):
        e = Engine()
        e.schedule_at(5.0, lambda: None)
        e.run()
        with pytest.raises(ValueError):
            e.schedule_at(1.0, lambda: None)
        with pytest.raises(ValueError):
            e.schedule_after(-1.0, lambda: None)

    def test_cascading_events(self):
        e = Engine()
        out = []

        def chain(k):
            out.append(k)
            if k < 5:
                e.schedule_after(1.0, lambda: chain(k + 1))

        e.schedule_at(0.0, lambda: chain(0))
        e.run()
        assert out == [0, 1, 2, 3, 4, 5]
        assert e.events_processed == 6


class TestCancel:
    def test_cancelled_not_run(self):
        e = Engine()
        out = []
        item = e.schedule_at(1.0, lambda: out.append("x"))
        e.cancel(item)
        e.run()
        assert out == []

    def test_pending_counts_uncancelled(self):
        e = Engine()
        a = e.schedule_at(1.0, lambda: None)
        e.schedule_at(2.0, lambda: None)
        assert e.pending == 2
        e.cancel(a)
        assert e.pending == 1


class TestStopsAndLimits:
    def test_stop_predicate_halts(self):
        e = Engine()
        out = []
        for k in range(10):
            e.schedule_at(float(k), lambda k=k: out.append(k))
        e.run(stop=lambda: len(out) >= 3)
        assert out == [0, 1, 2]
        assert e.pending == 7

    def test_stop_checked_before_first_event(self):
        e = Engine()
        out = []
        e.schedule_at(1.0, lambda: out.append(1))
        e.run(stop=lambda: True)
        assert out == []

    def test_exhaustion_without_stop_ok(self):
        e = Engine()
        e.schedule_at(1.0, lambda: None)
        e.run()  # no error

    def test_exhaustion_with_unmet_stop_raises(self):
        e = Engine()
        e.schedule_at(1.0, lambda: None)
        with pytest.raises(EngineLimitError, match="liveness"):
            e.run(stop=lambda: False)

    def test_max_events(self):
        e = Engine()

        def forever():
            e.schedule_after(1.0, forever)

        e.schedule_at(0.0, forever)
        with pytest.raises(EngineLimitError, match="max_events"):
            e.run(stop=lambda: False, max_events=100)

    def test_max_time(self):
        e = Engine()

        def forever():
            e.schedule_after(1.0, forever)

        e.schedule_at(0.0, forever)
        with pytest.raises(EngineLimitError, match="max_time"):
            e.run(stop=lambda: False, max_time=50.0)

    def test_empty_run(self):
        e = Engine()
        e.run()
        assert e.events_processed == 0


class TestLimitDiagnostics:
    """EngineLimitError carries the engine state at the failure point."""

    def test_max_events_carries_state(self):
        e = Engine()

        def forever():
            e.schedule_after(1.0, forever)

        e.schedule_at(0.0, forever)
        with pytest.raises(EngineLimitError) as exc_info:
            e.run(max_events=7)
        err = exc_info.value
        assert err.events_processed == 7
        assert err.now == 6.0
        assert err.queue_depth == 1
        assert "events_processed=7" in str(err)
        assert "now=6" in str(err)
        assert "queue_depth=1" in str(err)

    def test_max_time_carries_state(self):
        e = Engine()

        def forever():
            e.schedule_after(1.0, forever)

        e.schedule_at(0.0, forever)
        with pytest.raises(EngineLimitError) as exc_info:
            e.run(stop=lambda: False, max_time=3.0)
        err = exc_info.value
        assert err.now == 3.0
        assert err.events_processed == 4  # events at t=0,1,2,3 ran

    def test_liveness_failure_carries_state(self):
        e = Engine()
        e.schedule_at(1.0, lambda: None)
        with pytest.raises(EngineLimitError) as exc_info:
            e.run(stop=lambda: False)
        err = exc_info.value
        assert "liveness" in str(err)
        assert err.events_processed == 1
        assert err.queue_depth == 0

    def test_diag_context_appears_in_message(self):
        e = Engine()
        e.diag_context = lambda: {"buffered_per_node": [3, 0, 1]}
        e.schedule_at(0.0, lambda: None)
        with pytest.raises(EngineLimitError) as exc_info:
            e.run(stop=lambda: False)
        err = exc_info.value
        assert err.detail == {"buffered_per_node": [3, 0, 1]}
        assert "buffered_per_node=[3, 0, 1]" in str(err)

    def test_cluster_contributes_buffer_diagnostics(self):
        """A run that cannot quiesce reports where messages are stuck."""
        from repro.sim.cluster import run_schedule
        from repro.workloads.ops import Schedule, ScheduledOp, WriteOp

        sched = Schedule.of([ScheduledOp(0.0, 0, WriteOp("x"))])
        with pytest.raises(EngineLimitError) as exc_info:
            # 2 processes but the only update needs ~1 time unit to
            # arrive: max_time cuts the run before delivery.
            run_schedule("optp", 2, sched, max_time=0.5)
        err = exc_info.value
        assert "buffered_per_node" in str(err)
        assert err.detail["in_flight_updates"] == 1
