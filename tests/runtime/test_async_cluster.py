"""Integration tests for the asyncio runtime.

Timings here are real (scaled) wall-clock, so every assertion targets
run *properties* -- legality, safety, liveness -- never exact times.
"""

import pytest

from repro.model.legality import is_causally_consistent
from repro.runtime import AsyncCluster, ClusterQuiesceError, run_programs_async
from repro.sim.latency import ConstantLatency, UniformLatency
from repro.workloads.ops import Program, ReadStep, WaitReadStep, WriteStep

ALL_PROTOCOLS = ["optp", "anbkh", "ws-receiver", "jimenez-token",
                 "sequencer", "gossip-optp"]
FAST = dict(time_scale=0.002, quiesce_timeout=20.0)


def h1_programs():
    # c trails a by 8 simulated units (>> the 0.3-unit poll) so p1's
    # wait reliably observes a before c overwrites it, even under real
    # event-loop jitter.
    return [
        Program.of(WriteStep("x1", "a"), WriteStep("x1", "c", delay=8.0)),
        Program.of(WaitReadStep("x1", "a", poll=0.3), WriteStep("x2", "b")),
        Program.of(WaitReadStep("x2", "b", poll=0.3), WriteStep("x2", "d")),
    ]


class TestAsyncRuns:
    @pytest.mark.parametrize("proto", ["optp", "anbkh"])
    def test_h1_on_real_concurrency(self, proto):
        r = run_programs_async(proto, 3, h1_programs(),
                               latency=ConstantLatency(1.0), **FAST)
        assert is_causally_consistent(r.history)
        assert r.writes_issued == 4
        for wid in r.trace.writes_issued():
            for k in range(3):
                assert r.trace.apply_event(k, wid) is not None

    @pytest.mark.parametrize("proto", ALL_PROTOCOLS)
    def test_random_latency_consistent(self, proto):
        programs = [
            Program.of(WriteStep("a", 1), WriteStep("b", 2, delay=0.2),
                       ReadStep("c", delay=0.2)),
            Program.of(ReadStep("a"), WriteStep("c", 3, delay=0.3)),
            Program.of(WriteStep("a", 4, delay=0.1), ReadStep("b", delay=0.5)),
        ]
        r = run_programs_async(proto, 3, programs,
                               latency=UniformLatency(0.2, 2.0, seed=11), **FAST)
        assert is_causally_consistent(r.history)

    def test_wait_read_gives_up(self):
        programs = [
            Program.of(WaitReadStep("never", 1, poll=0.05, max_polls=3)),
            Program.of(),
        ]
        with pytest.raises(RuntimeError, match="gave up"):
            run_programs_async("optp", 2, programs, **FAST)

    def test_program_count_checked(self):
        with pytest.raises(ValueError, match="programs"):
            run_programs_async("optp", 3, [Program.of()], **FAST)

    def test_single_use(self):
        import asyncio

        cluster = AsyncCluster("optp", 1, **FAST)
        asyncio.run(cluster.run_programs([Program.of(WriteStep("x", 1))]))
        with pytest.raises(RuntimeError, match="single-use"):
            asyncio.run(cluster.run_programs([Program.of()]))

    def test_validation(self):
        with pytest.raises(ValueError):
            AsyncCluster("optp", 0)
        with pytest.raises(ValueError):
            AsyncCluster("optp", 2, time_scale=0)

    def test_duration_reported_in_sim_units(self):
        r = run_programs_async("optp", 2,
                               [Program.of(WriteStep("x", 1)), Program.of()],
                               latency=ConstantLatency(1.0), **FAST)
        # at least one message hop of simulated length 1.0 must have elapsed
        assert r.duration >= 0.9


class TestShutdown:
    def test_no_pending_tasks_after_run(self):
        """Teardown must await its cancellations: nothing the cluster
        started may still be alive when run_programs returns."""
        import asyncio

        async def go():
            cluster = AsyncCluster("jimenez-token", 3, **FAST)
            before = {t for t in asyncio.all_tasks() if not t.done()}
            await cluster.run_programs([
                Program.of(WriteStep("x", 1)),
                Program.of(ReadStep("x", delay=0.2)),
                Program.of(),
            ])
            leaked = [
                t for t in asyncio.all_tasks()
                if not t.done() and t not in before
            ]
            assert leaked == []

        asyncio.run(go())

    def test_quiesce_timeout_carries_diagnostics(self):
        """A quiesce failure must be debuggable from the exception
        alone: per-node queue depths, expected vs. observed applies."""

        class BlackHole(ConstantLatency):
            """Counts a send but never lets an update arrive in time."""

            def latency(self, s, d, m):
                return 10_000.0

        programs = [
            Program.of(WriteStep("x", 1)),
            Program.of(),
        ]
        with pytest.raises(ClusterQuiesceError) as exc_info:
            run_programs_async(
                "optp", 2, programs,
                latency=BlackHole(1.0),
                time_scale=0.002, quiesce_timeout=0.2,
            )
        err = exc_info.value
        assert isinstance(err, TimeoutError)  # backward compatible
        assert err.in_flight_updates == 1
        assert err.expected_applies == 1
        assert err.observed_applies == 0
        assert [e["node"] for e in err.per_node] == [0, 1]
        for entry in err.per_node:
            assert "buffered" in entry and "missing_applies" in entry
        assert "in_flight_updates=1" in str(err)
        assert "p0: buffered=" in str(err)
