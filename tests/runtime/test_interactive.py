"""Tests for the interactive CausalKV API."""

import asyncio

import pytest

from repro.model.operations import BOTTOM, WriteId
from repro.runtime.interactive import CausalKV
from repro.sim.latency import ConstantLatency, UniformLatency

FAST = dict(time_scale=0.002, quiesce_timeout=20.0)


def run(coro):
    return asyncio.run(coro)


class TestBasicUsage:
    def test_put_get_roundtrip(self):
        async def scenario():
            async with CausalKV.open(3, **FAST) as kv:
                wid = await kv.put(0, "greeting", "hello")
                assert wid == WriteId(0, 1)
                assert await kv.get(0, "greeting") == "hello"
                got = await kv.wait_visible(1, "greeting")
                assert got == "hello"
            return kv

        kv = run(scenario())
        report = kv.report()
        assert report.ok, report.summary()

    def test_unseen_key_is_bottom(self):
        async def scenario():
            async with CausalKV.open(2, **FAST) as kv:
                assert (await kv.get(1, "nothing")) is BOTTOM

        run(scenario())

    def test_causal_chain_across_replicas(self):
        async def scenario():
            async with CausalKV.open(3, latency=UniformLatency(0.2, 1.5, seed=3),
                                     **FAST) as kv:
                await kv.put(0, "post", "P")
                await kv.wait_visible(1, "post")
                await kv.put(1, "reply", "R")
                # whoever sees the reply must be able to see the post
                await kv.wait_visible(2, "reply")
                assert await kv.get(2, "post") == "P"
            return kv

        kv = run(scenario())
        assert kv.report().ok

    def test_wait_visible_times_out(self):
        async def scenario():
            async with CausalKV.open(2, **FAST) as kv:
                with pytest.raises(TimeoutError):
                    await kv.wait_visible(1, "never", timeout=0.05)

        run(scenario())


class TestSessionResult:
    def test_result_and_trace_available_after_close(self):
        async def scenario():
            async with CausalKV.open(2, **FAST) as kv:
                await kv.put(0, "k", 1)
                await kv.wait_visible(1, "k")
            return kv

        kv = run(scenario())
        assert kv.result.writes_issued == 1
        assert kv.result.remote_applies == 1
        # polling reads are part of the observed history
        assert len(list(kv.result.history.reads())) >= 1

    def test_report_before_close_rejected(self):
        async def scenario():
            async with CausalKV.open(2, **FAST) as kv:
                with pytest.raises(RuntimeError, match="close"):
                    kv.report()

        run(scenario())

    def test_trace_serializes(self):
        from repro.sim.serialize import trace_from_jsonl, trace_to_jsonl

        async def scenario():
            async with CausalKV.open(2, **FAST) as kv:
                await kv.put(0, "k", "v")
                await kv.wait_visible(1, "k")
            return kv

        kv = run(scenario())
        loaded = trace_from_jsonl(trace_to_jsonl(kv.trace))
        assert len(loaded) == len(kv.trace)


class TestGuards:
    def test_replica_range(self):
        async def scenario():
            async with CausalKV.open(2, **FAST) as kv:
                with pytest.raises(ValueError):
                    await kv.put(5, "k", 1)

        run(scenario())

    def test_ops_after_close_rejected(self):
        async def scenario():
            kv = CausalKV.open(2, **FAST)
            await kv.start()
            await kv.close()
            with pytest.raises(RuntimeError, match="not running"):
                await kv.put(0, "k", 1)

        run(scenario())

    def test_double_start_rejected(self):
        async def scenario():
            kv = CausalKV.open(2, **FAST)
            await kv.start()
            with pytest.raises(RuntimeError, match="already started"):
                await kv.start()
            await kv.close()

        run(scenario())

    def test_n_replicas_validated(self):
        with pytest.raises(ValueError):
            CausalKV.open(0)


class TestOtherProtocols:
    @pytest.mark.parametrize("proto", ["anbkh", "gossip-optp", "sequencer"])
    def test_protocol_choice(self, proto):
        async def scenario():
            async with CausalKV.open(3, protocol=proto, **FAST) as kv:
                await kv.put(0, "k", "v")
                assert await kv.wait_visible(2, "k") == "v"
            return kv

        kv = run(scenario())
        assert kv.report().ok, kv.report().summary()
