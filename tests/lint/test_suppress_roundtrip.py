"""Property test: suppression comments round-trip through the flow
runner -- every directive either silences exactly its finding or is
reported stale (RL900), for syntactic and flow rules alike."""

from pathlib import Path

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.lint import all_rules, lint_file  # noqa: E402

FAKE = Path("tests/lint/fixtures/protocols/_hypo_snippet.py")

#: (method body line, the code it violates; None = clean)
LINES = [
    ("return time.time()", "RL001"),
    ("self.vc[u] -= 1", "RL102"),
    ("return u", None),
]

#: suppression applied to the body line: no directive, the correct
#: code, a wrong-but-active code, or the catch-all.
DIRECTIVES = [None, "correct", "RL009", "all"]


def build_module(specs):
    lines = [
        "import time",
        "",
        "class C:",
        "    def __init__(self, n):",
        "        self.vc = [0] * n",
    ]
    expected = {}  # lineno -> set of expected finding codes
    for i, (line_idx, directive) in enumerate(specs):
        body, code = LINES[line_idx]
        lines.append(f"    def m{i}(self, u):")
        stmt = f"        {body}"
        if directive == "correct":
            directive = code  # clean line: no directive to attach
        if directive is not None:
            stmt += f"  # reprolint: disable={directive}"
        lines.append(stmt)
        lineno = len(lines)
        want = set()
        if directive is None:
            if code:
                want.add(code)
        elif directive == "all":
            if not code:
                want.add("RL900")  # catch-all silencing nothing is stale
        elif directive == code:
            pass  # silenced, directive used
        else:  # wrong-but-active code: finding survives, directive stale
            if code:
                want.add(code)
            want.add("RL900")
        if want:
            expected[lineno] = want
    return "\n".join(lines) + "\n", expected


@given(
    st.lists(
        st.tuples(
            st.integers(0, len(LINES) - 1),
            st.sampled_from(DIRECTIVES),
        ),
        min_size=1, max_size=6,
    )
)
@settings(max_examples=25, deadline=None)
def test_suppressions_round_trip_through_the_flow_runner(specs):
    source, expected = build_module(specs)
    findings = lint_file(FAKE, all_rules(flow=True), source=source)
    assert findings == sorted(findings)  # stable ordering invariant
    got = {}
    for f in findings:
        got.setdefault(f.line, set()).add(f.code)
    assert got == expected, source


def test_flow_only_suppression_is_not_stale_without_flow():
    # `disable=RL102` in a plain run must not be RL900: the rule never
    # had the chance to fire, so the directive cannot be judged stale
    source, _ = build_module([(1, "correct")])
    assert lint_file(FAKE, all_rules(), source=source) == []
    assert lint_file(FAKE, all_rules(flow=True), source=source) == []
