"""RL101-RL104 behaviors: fixture corpus, mutant ground truth, the
whole-program payload key summary, and flow-vs-syntactic dedup."""

from pathlib import Path

import pytest

from repro.lint import all_rules, lint_file, lint_paths

FIXTURES = Path(__file__).parent / "fixtures"

#: (fixture path, the only code expected to fire, finding count)
BAD_FLOW = [
    ("protocols/bad_payload_escape.py", "RL101", 3),
    ("protocols/bad_vc_monotonic.py", "RL102", 5),
    ("sim/bad_flat_alloc_transitive.py", "RL104", 2),
]

GOOD_FLOW = [
    "protocols/good_payload_escape.py",
    "protocols/good_vc_monotonic.py",
    "sim/good_flat_alloc_transitive.py",
]


def run_flow(rel):
    return lint_file(FIXTURES / rel, all_rules(flow=True))


@pytest.mark.parametrize("rel,code,count", BAD_FLOW)
def test_bad_flow_fixture_fires_exactly_its_rule(rel, code, count):
    findings = run_flow(rel)
    assert {f.code for f in findings} == {code}
    assert len(findings) == count
    assert findings == sorted(findings)  # stable output ordering


@pytest.mark.parametrize("rel", GOOD_FLOW)
def test_good_flow_fixture_is_silent(rel):
    findings = run_flow(rel)
    assert findings == [], [f.render() for f in findings]


def test_payload_escape_fixture_covers_each_shape():
    messages = "\n".join(
        f.message for f in run_flow("protocols/bad_payload_escape.py"))
    assert "aliases live mutable state" in messages
    assert "live mutable state self._scratch escapes" in messages
    assert "mutated afterwards" in messages


def test_vc_monotonic_fixture_covers_each_shape():
    messages = "\n".join(
        f.message for f in run_flow("protocols/bad_vc_monotonic.py"))
    assert "decrement of vector-clock component self.vc" in messages
    assert "negative increment" in messages
    assert "bypasses the join/increment discipline" in messages
    assert "whole-vector rebind of self.vc" in messages
    assert "skips vector component(s) 0..0" in messages


def test_transitive_nondet_needs_the_multi_module_graph():
    # the wall-clock read lives in a zone-other helper module, so the
    # syntactic rules are silent; only lint_paths (which builds the
    # cross-module call graph) can see the chain into the sim zone
    report = lint_paths([FIXTURES / "flowproj"], flow=True)
    assert [(f.code, Path(f.path).name) for f in report.findings] == [
        ("RL103", "driver.py"),
    ]
    message = report.findings[0].message
    assert "now_ms" in message and "time.time" in message


def test_flow_rules_silent_without_flow_analysis():
    # plain runs never select RL101-RL104, and even a hand-built rule
    # instance stays silent when ctx.flow is missing
    for rel, _code, _n in BAD_FLOW:
        assert lint_file(FIXTURES / rel, all_rules()) == []


def test_flow_findings_dedup_against_syntactic_siblings():
    path = FIXTURES / "protocols" / "payload_escape_receive.py"
    full = lint_file(path, all_rules(flow=True))
    # RL003 already flags both lines; the RL101 twins are dropped
    assert [f.code for f in full] == ["RL003", "RL003"]
    only_flow = lint_file(path, all_rules(select=["RL101"]))
    assert [f.code for f in only_flow] == ["RL101", "RL101"]
    assert {f.line for f in only_flow} == {f.line for f in full}


# -- the shared ground-truth corpus: tests/mck/mutants.py -------------------

def test_mutants_are_flagged_statically():
    """The mck mutation suite's protocol-breaking mutants must be
    caught by the flow rules without running a single schedule.  The
    mutants file lives in the mck zone, so it is linted here under a
    protocols-zone path -- the zone its classes would ship in."""
    source = Path("tests/mck/mutants.py").read_text()
    fake = Path("src/repro/protocols/_mutants_corpus.py")
    findings = lint_file(fake, all_rules(flow=True), source=source)
    by_code = {}
    for f in findings:
        by_code.setdefault(f.code, []).append(f)
    # LeakyOptP: post-construction payload store of live mutable state
    assert len(by_code.get("RL101", [])) == 1
    assert "_scratch" in by_code["RL101"][0].message
    # BrokenANBKH: range(1, ...) delivery loops in classify and
    # missing_deps both skip writer 0's vector component
    assert len(by_code.get("RL102", [])) == 2
    assert all("skips vector component(s) 0..0" in f.message
               for f in by_code["RL102"])
    # nothing else fires: BrokenOptP's off-by-one slack is a *logic*
    # mutation the dynamic conformance suite owns
    assert set(by_code) == {"RL101", "RL102"}


def test_payload_key_summary_proves_wire_discipline():
    """The whole-program key summary must prove the repo's
    tuple-on-the-wire discipline: no payload key ever carries a
    provably mutable object, so the receive-side RL101 check needs no
    new suppressions anywhere in src/repro."""
    from repro.lint.context import ModuleContext
    from repro.lint.flow import build_flow
    from repro.lint.runner import collect_files

    contexts = [
        ModuleContext.parse(p)
        for p in collect_files([Path("src/repro")])
    ]
    flow = build_flow(contexts)
    keys = flow.payload_keys._keys
    assert keys, "no payload placements found in src/repro?"
    assert "mutable" not in keys.values(), keys
    # the vector-clock keys are positively proven frozen
    assert keys["VT_KEY"] == "frozen"
    assert keys["VAR_PAST_KEY"] == "frozen"
