"""Inline suppressions: silencing, RL900 staleness, docstring immunity."""

from pathlib import Path

import pytest

from repro.lint import all_rules, lint_file
from repro.lint.suppress import parse_suppressions

SIM = Path("tests/lint/fixtures/sim")


def lint_source(source, name="sim/snippet.py"):
    return lint_file(Path(f"tests/lint/fixtures/{name}"), all_rules(),
                     source=source)


def test_suppression_silences_matching_code():
    src = (
        "import time\n"
        "def stamp():\n"
        "    return time.time()  # reprolint: disable=RL001\n"
    )
    assert lint_source(src) == []


def test_suppression_all_silences_everything():
    src = (
        "import time\n"
        "def stamp():\n"
        "    return time.time()  # reprolint: disable=all\n"
    )
    assert lint_source(src) == []


def test_wrong_code_does_not_silence():
    src = (
        "import time\n"
        "def stamp():\n"
        "    return time.time()  # reprolint: disable=RL002\n"
    )
    codes = {f.code for f in lint_source(src)}
    # the real finding survives AND the directive is reported stale
    assert codes == {"RL001", "RL900"}


def test_unused_suppression_reported_as_rl900():
    src = (
        "def clean():\n"
        "    return 1  # reprolint: disable=RL001\n"
    )
    findings = lint_source(src)
    assert [f.code for f in findings] == ["RL900"]
    assert "disable=RL001" in findings[0].message


def test_multi_code_directive_partial_staleness():
    src = (
        "import time\n"
        "def stamp():\n"
        "    return time.time()  # reprolint: disable=RL001,RL002\n"
    )
    findings = lint_source(src)
    # RL001 silenced; the RL002 half of the directive is stale
    assert [f.code for f in findings] == ["RL900"]
    assert "disable=RL002" in findings[0].message


def test_directive_in_docstring_is_ignored():
    src = (
        '"""Docs may mention # reprolint: disable=RL001 freely."""\n'
        "def clean():\n"
        "    return 1\n"
    )
    assert lint_source(src) == []


def test_parse_suppressions_line_numbers():
    src = "x = 1\ny = 2  # reprolint: disable=RL003\n"
    table = parse_suppressions("f.py", src)
    assert 2 in table._by_line
    assert table._by_line[2].codes == {"RL003"}
