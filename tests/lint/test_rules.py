"""Per-rule proof: each bad fixture fires its rule, each good fixture
stays silent -- under the *full* rule set, so fixtures also prove the
rules don't bleed into each other."""

from pathlib import Path

import pytest

from repro.lint import all_rules, lint_file, zone_of

FIXTURES = Path(__file__).parent / "fixtures"

#: (fixture path, the only code expected to fire there)
BAD = [
    ("sim/bad_determinism.py", "RL001"),
    ("sim/bad_set_iter.py", "RL002"),
    ("protocols/bad_aliasing.py", "RL003"),
    ("protocols/bad_contract.py", "RL004"),
    ("protocols/bad_hooks.py", "RL005"),
    ("hotpath_bad/node.py", "RL006"),
    ("sim/bad_isolation.py", "RL007"),
    ("protocols/bad_isolation_protocol.py", "RL007"),
    ("sweep/bad_worker.py", "RL008"),
    ("sweep/bad_determinism.py", "RL001"),
    ("sim/bad_flat_alloc.py", "RL009"),
    ("flatstate_bad/flatstate.py", "RL006"),
    ("mck/bad_obsgate.py", "RL006"),
    ("protocols/bad_flat_decl.py", "RL004"),
    ("serve/bad_worker.py", "RL008"),
    ("serve/bad_determinism.py", "RL001"),
    ("serve_hotpath_bad/server.py", "RL006"),
]

GOOD = [
    "sim/good_determinism.py",
    "sim/good_set_iter.py",
    "protocols/good_aliasing.py",
    "protocols/good_contract.py",
    "protocols/good_hooks.py",
    "hotpath_good/node.py",
    "sim/good_isolation.py",
    "sweep/good_worker.py",
    "sim/good_flat_alloc.py",
    "flatstate_good/flatstate.py",
    "mck/good_obsgate.py",
    "protocols/good_flat_decl.py",
    "serve/good_worker.py",
    "serve/good_determinism.py",
    "serve_hotpath_good/server.py",
]


def run(rel):
    return lint_file(FIXTURES / rel, all_rules())


@pytest.mark.parametrize("rel,code", BAD)
def test_bad_fixture_fires_exactly_its_rule(rel, code):
    findings = run(rel)
    assert findings, f"{rel} produced no findings"
    assert {f.code for f in findings} == {code}


@pytest.mark.parametrize("rel", GOOD)
def test_good_fixture_is_silent(rel):
    findings = run(rel)
    assert findings == [], [f.render() for f in findings]


def test_zone_inference_matches_package_layout():
    assert zone_of(FIXTURES / "sim" / "bad_determinism.py") == "sim"
    assert zone_of(Path("src/repro/protocols/gossip.py")) == "protocols"
    assert zone_of(Path("src/repro/cli.py")) == "other"


# -- finding shapes ---------------------------------------------------------

def test_determinism_fixture_covers_each_source():
    findings = run("sim/bad_determinism.py")
    messages = "\n".join(f.message for f in findings)
    assert "time.time" in messages
    assert "datetime" in messages
    assert "os.urandom" in messages
    assert "random.random" in messages
    assert "random.Random() without a seed" in messages


def test_aliasing_fixture_covers_each_pattern():
    findings = run("protocols/bad_aliasing.py")
    messages = "\n".join(f.message for f in findings)
    # receiver-side store of a payload value
    assert "payload value stored into protocol state" in messages
    # mutable vector shipped in a payload
    assert "shipped in a message payload" in messages
    # sender-side alias of the in-flight message
    assert "aliases the in-flight message" in messages
    # internal vector aliasing
    assert "aliasing internal vector self.write_co" in messages
    # live state returned from introspection
    assert "introspection must return snapshots" in messages


def test_contract_fixture_names_missing_hooks():
    findings = run("protocols/bad_contract.py")
    messages = "\n".join(f.message for f in findings)
    assert "missing mandatory hook(s): read, classify, apply_update" in messages
    assert "only consulted when missing_deps is implemented" in messages
    assert "must keep the (self, msg) signature" in messages
    assert len(findings) == 3


def test_flat_decl_fixture_names_each_mismatch():
    findings = run("protocols/bad_flat_decl.py")
    messages = "\n".join(f.message for f in findings)
    assert ("missing flat hook(s): enable_flat_state, flat_progress, "
            "flat_deps") in messages
    assert "without missing_deps" in messages
    assert ("implements flat hook(s) flat_progress, flat_deps without "
            "declaring supports_flat_state = True") in messages
    assert len(findings) == 3


def test_hooks_fixture_names_each_capability():
    findings = run("protocols/bad_hooks.py")
    messages = "\n".join(f.message for f in findings)
    assert "timer_interval" in messages
    assert "discard_update" in messages
    assert "missing_applies" in messages
    assert len(findings) == 3


def test_obs_fixture_flags_each_instrument_kind():
    findings = run("hotpath_bad/node.py")
    messages = "\n".join(f.message for f in findings)
    assert "instrument update .inc()" in messages
    assert "instrument update .set()" in messages
    assert "sink callback .on_apply()" in messages
    assert "registry lookup .counter()" in messages
    assert "registry lookup .gauge()" in messages


def test_worker_fixture_flags_each_unpicklable_shape():
    findings = run("sweep/bad_worker.py")
    messages = "\n".join(f.message for f in findings)
    assert "lambda" in messages
    assert "nested function 'local_worker'" in messages
    assert "bound method 'self.run_one'" in messages
    # the module-level lambda assignment is unpicklable too
    assert "'double'" in messages
    assert len(findings) == 4


def test_flat_alloc_fixture_flags_each_hot_zone():
    findings = run("sim/bad_flat_alloc.py")
    messages = "\n".join(f.message for f in findings)
    assert "FlatScheduler.offer()" in messages
    assert "FlatScheduler.notify_applied()" in messages
    assert "PendingMatrix.add()" in messages
    assert "_receive_update_flat()" in messages
    assert all(f.code == "RL009" for f in findings)
    assert len(findings) == 5  # offer fires twice (list + tuple)


def test_sweep_zone_inference():
    assert zone_of(FIXTURES / "sweep" / "bad_worker.py") == "sweep"
    assert zone_of(Path("src/repro/sweep/worker.py")) == "sweep"


def test_serve_zone_inference():
    assert zone_of(FIXTURES / "serve" / "bad_worker.py") == "serve"
    assert zone_of(Path("src/repro/serve/loadgen.py")) == "serve"
    # the hot-path fixtures deliberately sit outside the serve zone so
    # RL006 coverage is proven to come from the filename alone
    assert zone_of(FIXTURES / "serve_hotpath_bad" / "server.py") == "other"


def test_serve_hot_path_covers_server_and_codec():
    from repro.lint.context import ModuleContext

    srv = ModuleContext.parse(FIXTURES / "serve_hotpath_bad" / "server.py")
    assert srv.is_hot_path  # by filename, regardless of zone
    assert zone_of(Path("src/repro/serve/codec.py")) == "serve"


def test_serve_worker_fixture_flags_each_unpicklable_shape():
    findings = run("serve/bad_worker.py")
    messages = "\n".join(f.message for f in findings)
    assert "lambda" in messages
    assert "nested function 'local_main'" in messages
    assert "bound method 'self.node_main'" in messages
    assert "'boot'" in messages  # module-level lambda assignment
    # Process(target=...) and pool.submit() are both covered
    labels = "\n".join(f.message for f in findings)
    assert "Process(target=...)" in labels
    assert ".submit()" in labels
    assert all(f.code == "RL008" for f in findings)
    assert len(findings) == 5


def test_serve_obs_fixture_flags_each_site():
    findings = run("serve_hotpath_bad/server.py")
    messages = "\n".join(f.message for f in findings)
    assert "registry lookup .counter()" in messages
    assert "registry lookup .gauge()" in messages
    assert "instrument update .inc()" in messages
    assert "instrument update .set()" in messages
    assert len(findings) == 4


def test_hot_path_covers_flatstate_and_mck_zone():
    from repro.lint.context import ModuleContext

    flat = ModuleContext.parse(FIXTURES / "flatstate_bad" / "flatstate.py")
    assert flat.is_hot_path  # by filename, regardless of zone
    mck = ModuleContext.parse(FIXTURES / "mck" / "good_obsgate.py")
    assert mck.zone == "mck" and mck.is_hot_path  # by zone
    assert zone_of(Path("src/repro/mck/explorer.py")) == "mck"


def test_flatstate_obs_fixture_flags_each_site():
    findings = run("flatstate_bad/flatstate.py")
    messages = "\n".join(f.message for f in findings)
    assert "registry lookup .counter()" in messages
    assert "registry lookup .gauge()" in messages
    assert "instrument update .inc()" in messages
    assert "instrument update .set()" in messages
    assert len(findings) == 4


def test_mck_obs_fixture_flags_each_site():
    findings = run("mck/bad_obsgate.py")
    messages = "\n".join(f.message for f in findings)
    assert "registry lookup .counter()" in messages
    assert "instrument update .inc()" in messages
    assert "sink callback .on_apply()" in messages
    assert len(findings) == 3


def test_isolation_fixture_flags_reads_and_writes():
    findings = run("sim/bad_isolation.py")
    messages = "\n".join(f.message for f in findings)
    assert "cross-node access .protocol.apply_update" in messages
    assert "cross-node access .protocol.write_co" in messages
    assert "assignment to .protocol.write_co" in messages
