"""Call graph + function summary unit tests: summaries, resolution
(plain / import / self with base walk), ambiguity, cycles, suppression
waivers, and zone-aware reachability."""

from pathlib import Path

from repro.lint.context import ModuleContext
from repro.lint.flow.callgraph import CallGraph, ModuleInfo


def module(path, src):
    return ModuleInfo(ModuleContext.parse(Path(path), src))


# -- per-function summaries -------------------------------------------------

def test_summary_records_sources_allocs_and_frozen_returns():
    mod = module("proj/util/helpers.py", """
import time

def now_ms():
    return time.time() * 1000.0

def snapshot(row):
    return tuple(row)

def rebuild(row):
    return list(row)
""")
    assert mod.functions["now_ms"].sources
    assert mod.functions["now_ms"].allocs == []
    assert mod.functions["snapshot"].returns_frozen
    # tuple(...) is frozen for the escape domain but still an
    # allocation for the hot-path query
    assert mod.functions["snapshot"].allocs == [(8, "tuple")]
    assert not mod.functions["rebuild"].returns_frozen
    assert mod.functions["rebuild"].allocs == [(11, "list")]


def test_summary_mutated_param_positions_respect_posonly_order():
    mod = module("proj/util/vecs.py", """
def join(row, /, other, *, scale):
    row[0] = other
    other.append(scale)
""")
    assert mod.functions["join"].mutates_params == {0, 1}


def test_summary_ignores_nested_function_bodies():
    mod = module("proj/util/outer.py", """
import time

def outer():
    def inner():
        return time.time()
    return inner
""")
    assert mod.functions["outer"].sources == []
    assert "inner" not in mod.functions


def test_summary_counts_set_iteration_in_comprehensions():
    mod = module("proj/util/sets.py", """
PENDING = {1, 2, 3}

def drain():
    return [x for x in PENDING]
""")
    assert any("set iteration" in d
               for _line, d in mod.functions["drain"].sources)


def test_suppression_waives_the_source_line():
    mod = module("proj/util/waived.py", """
import time

def stamp():
    return time.time()  # reprolint: disable=RL103
""")
    assert mod.functions["stamp"].sources == []


# -- resolution -------------------------------------------------------------

def test_resolution_plain_import_and_self_with_base_walk():
    helpers = module("proj/util/helpers.py", """
import time

def now_ms():
    return time.time()
""")
    driver = module("proj/sim/driver.py", """
from proj.util.helpers import now_ms

def local(n):
    return n

class Base:
    def helper(self):
        return list(self.row)

class Child(Base):
    def offer(self):
        return self.helper()

    def tick(self):
        return now_ms() + local(1)
""")
    graph = CallGraph([helpers, driver])
    tick = driver.functions["Child.tick"]
    offer = driver.functions["Child.offer"]
    assert graph.resolve(tick, "plain", "now_ms") \
        is helpers.functions["now_ms"]
    assert graph.resolve(tick, "plain", "local") \
        is driver.functions["local"]
    # self.helper resolves through the base-class walk
    assert graph.resolve(offer, "self", "helper") \
        is driver.functions["Base.helper"]
    assert graph.resolve(tick, "plain", "unknown_fn") is None


def test_ambiguous_module_suffix_resolves_to_nothing():
    a = module("proj/a/util.py", "def f():\n    return 1\n")
    b = module("proj/b/util.py", "def f():\n    return 2\n")
    graph = CallGraph([a, b])
    assert graph.by_suffix["util"] is None
    assert graph.module_by_ref("a.util") is a
    assert graph.module_by_ref("b.util") is b


# -- transitive queries -----------------------------------------------------

def test_nondet_path_reports_the_chain():
    helpers = module("proj/util/helpers.py", """
import time

def now_ms():
    return time.time()

def wrapper():
    return now_ms()
""")
    driver = module("proj/sim/driver.py", """
from proj.util.helpers import wrapper

def run():
    return wrapper()
""")
    graph = CallGraph([helpers, driver])
    hit = graph.nondet_path(helpers.functions["wrapper"])
    assert hit is not None
    desc, chain = hit
    assert "time.time" in desc
    assert chain == ["helpers.py:wrapper", "helpers.py:now_ms"]


def test_nondet_path_skips_sources_inside_determinism_zones():
    # a source in a sim module is RL001's site; the transitive query
    # must not double-report it
    simmod = module("proj/sim/clocky.py", """
import time

def stamp():
    return time.time()
""")
    graph = CallGraph([simmod])
    assert graph.nondet_path(simmod.functions["stamp"]) is None


def test_recursive_call_cycles_terminate():
    mod = module("proj/util/cyclic.py", """
def a(n):
    return b(n)

def b(n):
    return a(n - 1)
""")
    graph = CallGraph([mod])
    assert graph.nondet_path(mod.functions["a"]) is None
    assert graph.alloc_path(mod.functions["a"]) is None


def test_alloc_path_reports_the_chain():
    mod = module("proj/sim/flatty.py", """
def _snapshot(row):
    return list(row)

def pump_flat(row):
    return _snapshot(row)
""")
    graph = CallGraph([mod])
    hit = graph.alloc_path(mod.functions["pump_flat"])
    assert hit is not None
    desc, chain = hit
    assert "list(...)" in desc
    assert chain == ["flatty.py:pump_flat", "flatty.py:_snapshot"]
