"""GOOD: module-level pool entry points; nothing should fire."""

from concurrent.futures import ProcessPoolExecutor


def run_one(spec):
    return spec


def fan_out(specs):
    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(run_one, s) for s in specs]
        mapped = list(pool.map(run_one, specs))
    return [f.result() for f in futures] + mapped
