"""BAD: unpicklable pool entry points; RL008 (and only RL008) fires."""

from concurrent.futures import ProcessPoolExecutor

double = lambda x: x * 2  # noqa: E731


class Runner:
    def run_one(self, spec):
        return spec

    def fan_out(self, specs):
        def local_worker(spec):
            return spec

        with ProcessPoolExecutor(max_workers=2) as pool:
            a = pool.submit(lambda s: s, specs[0])
            b = pool.submit(local_worker, specs[0])
            c = pool.submit(self.run_one, specs[0])
            d = list(pool.map(double, specs))
        return [a.result(), b.result(), c.result()] + d
