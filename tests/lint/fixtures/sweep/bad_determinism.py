"""BAD: wall clock inside the sweep zone; RL001 fires (the real
worker's timing lines carry explicit ``reprolint: disable`` markers)."""

import time


def time_a_run(spec):
    start = time.perf_counter()
    return spec, time.perf_counter() - start
