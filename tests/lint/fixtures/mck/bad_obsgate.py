"""RL006 bad fixture: ungated instrumentation in the ``mck`` zone.

The directory (``mck``) makes every module here hot-path: the search
inner loop revisits each transition across thousands of cloned states.
"""


class Search:
    def __init__(self, obs):
        self._obs = obs
        self._m_states = obs.registry.counter("mck.states")  # ungated lookup

    def count_state(self, state):
        self._m_states.inc()  # ungated bump in the inner loop
        self._obs.sink.on_apply(0.0, 0, state)  # ungated sink callback
