"""RL006 good fixture: mck-zone instrumentation under obs guards."""


class Search:
    def __init__(self, obs):
        self._obs = obs
        if obs.enabled:
            self._m_states = obs.registry.counter("mck.states")

    def count_state(self, state):
        obs_on = self._obs.enabled  # hoisted guard
        if obs_on:
            self._m_states.inc()
            self._obs.sink.on_apply(0.0, 0, state)
