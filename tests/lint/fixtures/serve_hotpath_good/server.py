"""RL006 good fixture: serving hot-path instrumentation under guards."""


class ReplicaServer:
    def __init__(self, obs):
        self._obs = obs
        if obs.enabled:
            reg = obs.registry
            self._m_requests = reg.counter("serve.requests")
            self._g_inflight = reg.gauge("serve.inflight")

    def on_request(self, ops, inflight):
        obs_on = self._obs.enabled  # hoisted guard
        for _ in ops:
            if obs_on:
                self._m_requests.inc()
        if self._obs.enabled:
            self._g_inflight.set(len(inflight))
