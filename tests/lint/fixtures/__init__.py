# Fixture trees for the reprolint tests.  Directory names mirror the
# package zones (sim/, core/, protocols/) so zone inference treats these
# files exactly like src/repro/<zone>/... modules.  Files are named
# bad_* / good_* (never test_*) so pytest does not collect them.
