"""GOOD: module-level spawn entry points; nothing should fire."""

import multiprocessing


def node_main(spec):
    return spec


def start(specs):
    ctx = multiprocessing.get_context("spawn")
    procs = [
        ctx.Process(target=node_main, args=(spec,), name="replica")
        for spec in specs
    ]
    for proc in procs:
        proc.start()
    return procs
