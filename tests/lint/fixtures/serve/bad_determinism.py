"""BAD: ad-hoc wall clock inside the serve zone; RL001 fires (the real
serving layer routes every clock read through ``repro.serve.timebase``,
the single suppressed site)."""

import time


def stamp_request(ops):
    return time.monotonic(), ops
