"""GOOD: clock reads routed through the sanctioned timebase; silent."""

from repro.serve.timebase import monotonic


def stamp_request(ops):
    return monotonic(), ops
