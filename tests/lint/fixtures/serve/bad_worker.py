"""BAD: unpicklable spawn entry points in the serve zone; RL008 (and
only RL008) fires -- on ``Process(target=...)`` as well as pool calls."""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

boot = lambda spec: spec  # noqa: E731


class Launcher:
    def node_main(self, spec):
        return spec

    def start(self, specs):
        ctx = multiprocessing.get_context("spawn")

        def local_main(spec):
            return spec

        procs = [
            ctx.Process(target=lambda: None),
            ctx.Process(target=local_main, args=(specs[0],)),
            ctx.Process(target=self.node_main, args=(specs[0],)),
            multiprocessing.Process(target=boot, args=(specs[0],)),
        ]
        with ProcessPoolExecutor(max_workers=2) as pool:
            fut = pool.submit(local_main, specs[0])
        return procs, fut
