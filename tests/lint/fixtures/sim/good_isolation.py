"""RL007 good fixture: own-protocol hooks + read-only introspection."""


class Node:
    def __init__(self, protocol):
        self.protocol = protocol

    def deliver(self, msg):
        self.protocol.apply_update(msg)  # driving its OWN protocol


class Cluster:
    def __init__(self, nodes):
        self.nodes = nodes

    def quiesced(self):
        return sum(
            node.protocol.missing_applies() for node in self.nodes
        ) == 0

    def report(self):
        return [node.protocol.stats() for node in self.nodes]
