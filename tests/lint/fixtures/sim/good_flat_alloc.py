"""GOOD: flat hot zones stay allocation-free; conversions happen in
constructors and audit views, off the per-delivery path (RL009)."""


class FlatScheduler:
    def __init__(self, protocol):
        self.protocol = protocol
        # one-time conversions are fine: __init__ is not a hot zone.
        self.progress = list(protocol.apply_vec)
        self.parked = {}
        self.ready = []

    def offer(self, msg):
        # GOOD: reads the preallocated FlatDeps row in place; the only
        # tuples built are small fixed-arity park keys, not vectors.
        deps = msg.flat_deps
        missing = 0
        for c, req in deps.items:
            if self.progress[c] < req:
                self.parked.setdefault((c, req), []).append(msg.wid)
                missing += 1
        return "buffer" if missing else "apply"

    def notify_applied(self, msg):
        key = (msg.sender, msg.wid.seq)
        for wid in self.parked.pop(key, ()):
            self.ready.append(wid)

    def pump(self, apply_cb, discard_cb):
        while self.ready:
            apply_cb(self.ready.pop())

    def buffered(self):
        # audit view, not a hot zone: allocation on demand is fine.
        return list(self.parked.values())


class PendingMatrix:
    def __init__(self, n, capacity=64):
        self.free = list(range(capacity - 1, -1, -1))
        self.n = n
        self.live = {}

    def add(self, row):
        # GOOD: writes into a preallocated slot, no conversion.
        slot = self.free.pop()
        self.live[slot] = row
        return slot

    def remove(self, slot):
        del self.live[slot]
        self.free.append(slot)


class Node:
    def __init__(self, scheduler):
        self.scheduler = scheduler
        self.applied = []

    def _receive_update_flat(self, msg):
        # GOOD: the wire vector rides the message untouched.
        if self.scheduler.offer(msg) == "apply":
            self.applied.append(msg.wid)
