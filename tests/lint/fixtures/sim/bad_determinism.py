"""RL001 bad fixture: every banned nondeterminism source in one file."""

import datetime
import os
import random
import time


def stamp_event(event):
    event.time = time.time()  # wall clock
    return event


def label_run():
    return datetime.datetime.now().isoformat()


def salt():
    return os.urandom(8)


def jitter():
    return random.random()  # global, implicitly seeded RNG


def make_rng():
    return random.Random()  # no seed: falls back to OS entropy
