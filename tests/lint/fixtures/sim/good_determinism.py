"""RL001 good fixture: the sanctioned deterministic patterns."""

import random


def make_rng(seed):
    return random.Random(seed)  # explicit seed: deterministic


def jitter(rng):
    return rng.random()  # instance method, not the global RNG


def now(clock):
    return clock.now()  # simulation clock, not the wall clock
