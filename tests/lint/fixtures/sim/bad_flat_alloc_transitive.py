"""RL104 bad fixture: flat hot zones allocating *through* a helper.

RL009 sees no ``list``/``tuple`` call inside the hot methods
themselves; the call graph finds the allocation one hop away.
"""


def _snapshot(row):
    return list(row)


class FlatRouter:
    def __init__(self, n):
        self.progress = [0] * n

    def offer(self, key, row):
        view = _snapshot(row)
        return view


def pump_flat(router, row):
    return _snapshot(row)
