"""RL007 bad fixture (substrate zone): reaching into remote protocols."""


class Cluster:
    def __init__(self, nodes):
        self.nodes = nodes

    def shortcut_apply(self, msg):
        target = self.nodes[msg.dest]
        target.protocol.apply_update(msg)  # bypasses the message flow

    def peek_vector(self, pid):
        return self.nodes[pid].protocol.write_co  # private protocol state

    def force_vector(self, pid, vec):
        self.nodes[pid].protocol.write_co = vec  # external mutation
