"""RL104 good fixture: hot-path helpers stay allocation-free."""


def _advance(row, idx):
    row[idx] += 1
    return row[idx]


class FlatRouter:
    def __init__(self, n):
        self.progress = [0] * n

    def offer(self, key, idx):
        return _advance(self.progress, idx)


def pump_flat(router, idx):
    return _advance(router.progress, idx)
