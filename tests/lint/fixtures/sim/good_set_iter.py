"""RL002 good fixture: ordered iteration everywhere."""


def fanout(message, dests):
    targets = set(dests)
    for dest in sorted(targets):  # deterministic order
        message.send(dest)


def membership(targets, dest):
    seen = set(targets)
    return dest in seen  # membership tests are order-free
