"""RL002 bad fixture: set iteration on a replay-critical path."""


def fanout(message, dests):
    targets = set(dests)
    for dest in targets:  # hash-dependent order
        message.send(dest)


def first_pending(pending):
    return [wid for wid in {p.wid for p in pending}]
