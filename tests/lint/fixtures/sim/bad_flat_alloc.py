"""BAD: per-message vector allocation inside flat hot zones (RL009)."""


class FlatScheduler:
    def __init__(self, protocol):
        self.protocol = protocol
        self.parked = {}
        self.ready = []

    def offer(self, msg):
        # BAD: rebuilds the dependency vector for every delivery; the
        # FlatDeps row already holds it as a preallocated array.
        deps = list(msg.payload["vc"])
        missing = tuple(c for c, req in enumerate(deps) if req > 0)
        if missing:
            self.parked[msg.wid] = missing
            return "buffer"
        return "apply"

    def notify_applied(self, msg):
        # BAD: snapshots the progress vector per applied message.
        snapshot = tuple(self.protocol.apply_vec)
        self.ready.append((msg.wid, snapshot))

    def pump(self, apply_cb, discard_cb):
        while self.ready:
            wid, _ = self.ready.pop()
            apply_cb(wid)


class PendingMatrix:
    def __init__(self, n):
        self.rows = []
        self.n = n

    def add(self, counts):
        # BAD: per-parked-message list rebuild; the matrix preallocates.
        self.rows.append(list(counts))
        return len(self.rows) - 1


class Node:
    def __init__(self, scheduler):
        self.scheduler = scheduler
        self.applied = []

    def _receive_update_flat(self, msg):
        # BAD: per-delivery copy of the wire vector in the flat path.
        wire = tuple(msg.payload["vc"])
        if self.scheduler.offer(msg) == "apply":
            self.applied.append((msg.wid, wire))
