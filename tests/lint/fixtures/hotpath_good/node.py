"""RL006 good fixture: every instrument call sits under a guard."""


class Node:
    def __init__(self, obs):
        self._obs = obs
        if obs.enabled:
            reg = obs.registry
            self._m_applies = reg.counter("node.applies")
            self._g_depth = reg.gauge("node.depth")

    def on_apply(self, msg, pending):
        if self._obs.enabled:
            self._m_applies.inc()
            self._g_depth.set(len(pending))
            self._obs.sink.on_apply(0.0, 0, msg.wid)

    def pump(self, batch):
        obs_on = self._obs.enabled  # hoisted guard
        for msg in batch:
            if obs_on:
                self._m_applies.inc()
