"""RL101 receive-side + dedup fixture.

The sender ships a live mutable vector under ``"row"``; the receiver
stores the payload access bare.  Under the full rule set RL003 flags
both lines and the runner's dedup drops the RL101 twins; under
``--select RL101`` the flow rule reports both on its own.
"""

from repro.core.base import UpdateMessage


class RowSender:
    def __init__(self, n_processes):
        self.row = [0] * n_processes

    def emit(self, wid):
        return UpdateMessage(
            sender=0, wid=wid, variable="x", value=1,
            payload={"row": self.row},
        )


class RowReceiver:
    def apply_update(self, msg):
        self.latest = msg.payload["row"]
