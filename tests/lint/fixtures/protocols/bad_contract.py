"""RL004 bad fixture: missing hooks, orphan apply_event, bad signature."""

from repro.core.base import Protocol


class HalfProtocol(Protocol):
    """Missing read/classify/apply_update entirely."""

    name = "half"

    def write(self, variable, value):
        raise NotImplementedError


class OrphanEventProtocol(Protocol):
    name = "orphan"

    def write(self, variable, value):
        raise NotImplementedError

    def read(self, variable):
        raise NotImplementedError

    def classify(self, msg):
        raise NotImplementedError

    def apply_update(self, msg):
        raise NotImplementedError

    # apply_event without missing_deps: never consulted
    def apply_event(self, msg):
        return (msg.sender, msg.wid.seq)


class BadSignatureProtocol(Protocol):
    name = "badsig"

    def write(self, variable, value):
        raise NotImplementedError

    def read(self, variable):
        raise NotImplementedError

    def classify(self, msg):
        raise NotImplementedError

    def apply_update(self, msg):
        raise NotImplementedError

    def missing_deps(self, msg, rescan=False):  # extra parameter
        return None
