"""RL101 bad fixture: the three escape shapes RL003 cannot see.

None of these place a bare ``self.attr`` inside a payload dict or
store a payload access into ``self`` state, so the syntactic aliasing
rule stays silent -- only the flow-sensitive escape domain catches
them.
"""

from repro.core.base import Outgoing, UpdateMessage, WriteOutcome


class SievedProtocol:
    name = "sieved"

    def __init__(self, process_id, n_processes):
        self.process_id = process_id
        self.n_processes = n_processes
        self._row = [0] * n_processes
        self._scratch = []

    def write_aliased(self, variable, value, wid):
        # a *local* alias of live mutable state escapes into the payload
        row = self._row
        msg = UpdateMessage(
            sender=self.process_id, wid=wid, variable=variable, value=value,
            payload={"row": row},
        )
        return WriteOutcome(wid=wid, outgoing=(Outgoing(msg),))

    def write_posthoc(self, outcome):
        # post-construction payload store of live state (the LeakyOptP
        # mutant shape): the assignment target is not `self.`, so the
        # syntactic rule never looks at it
        self._scratch.append(len(self._scratch))
        for out in outcome.outgoing:
            out.message.payload["scratch"] = self._scratch
        return outcome

    def write_then_mutate(self, variable, value, wid):
        # a fresh vector is fine to ship -- until it is mutated after
        # the send, changing the in-flight message under the receiver
        pending = [0] * self.n_processes
        msg = UpdateMessage(
            sender=self.process_id, wid=wid, variable=variable, value=value,
            payload={"pending": pending},
        )
        pending.append(wid)
        return WriteOutcome(wid=wid, outgoing=(Outgoing(msg),))
