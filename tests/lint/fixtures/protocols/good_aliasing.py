"""RL003 good fixture: every boundary crossing copies."""

from repro.core.base import Outgoing, Protocol, UpdateMessage, WriteOutcome


class CarefulProtocol(Protocol):
    name = "careful"

    def __init__(self, process_id, n_processes):
        super().__init__(process_id, n_processes)
        self.write_co = [0] * n_processes
        self.last_write_on = {}

    def write(self, variable, value):
        self.write_co[self.process_id] += 1
        wid = self.next_wid()
        vec = tuple(self.write_co)  # immutable snapshot
        msg = UpdateMessage(
            sender=self.process_id, wid=wid, variable=variable, value=value,
            payload={"write_co": vec},
        )
        self.last_write_on[variable] = vec  # sharing a tuple is fine
        return WriteOutcome(wid=wid, outgoing=(Outgoing(msg),))

    def read(self, variable):
        raise NotImplementedError

    def classify(self, msg):
        raise NotImplementedError

    def apply_update(self, msg):
        self.last_write_on[msg.variable] = tuple(msg.payload["write_co"])
        self.write_co = list(msg.payload.get("write_co"))

    def debug_state(self):
        return {"write_co": tuple(self.write_co)}
