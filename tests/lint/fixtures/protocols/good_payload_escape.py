"""RL101 good fixture: the same shapes, escape-free.

Rebinding to a tuple clears the taint (flow-sensitivity), mutating a
fresh vector *before* the send is fine, and receive-side stores copy.
"""

from repro.core.base import Outgoing, UpdateMessage, WriteOutcome


class SnapshotProtocol:
    name = "snapshot"

    def __init__(self, process_id, n_processes):
        self.process_id = process_id
        self.n_processes = n_processes
        self._row = [0] * n_processes
        self._scratch = []

    def write_snapshotted(self, variable, value, wid):
        row = tuple(self._row)  # frozen snapshot of the live vector
        msg = UpdateMessage(
            sender=self.process_id, wid=wid, variable=variable, value=value,
            payload={"row": row},
        )
        return WriteOutcome(wid=wid, outgoing=(Outgoing(msg),))

    def write_posthoc_copy(self, outcome):
        self._scratch.append(len(self._scratch))
        for out in outcome.outgoing:
            out.message.payload["scratch"] = tuple(self._scratch)
        return outcome

    def write_mutate_then_freeze(self, variable, value, wid):
        pending = [0] * self.n_processes
        pending[self.process_id] = wid  # mutation before the send: fine
        pending = tuple(pending)  # rebind clears the mutable taint
        msg = UpdateMessage(
            sender=self.process_id, wid=wid, variable=variable, value=value,
            payload={"pending": pending},
        )
        return WriteOutcome(wid=wid, outgoing=(Outgoing(msg),))

    def apply_update(self, msg):
        # receive-side stores copy; and the senders above only ever
        # ship frozen values, so the key summary proves them safe too
        self.last_row = tuple(msg.payload["row"])
