"""RL004 bad fixture: ``supports_flat_state`` out of sync with hooks.

Three desynchronization shapes: declared but hooks missing, declared
with hooks but no ``missing_deps``, and hooks implemented without the
declaration (the flat backend would silently never be selected).
"""


class BaseProtocol:
    supports_flat_state = False


class DeclaredButHollow(BaseProtocol):
    supports_flat_state = True


class DeclaredWithoutDeps(BaseProtocol):
    supports_flat_state = True

    def enable_flat_state(self, deps):
        self._flat = deps

    def flat_progress(self):
        return 0

    def flat_deps(self, wid):
        return ()


class ImplementsButSilent(BaseProtocol):
    def flat_progress(self):
        return 0

    def flat_deps(self, wid):
        return ()
