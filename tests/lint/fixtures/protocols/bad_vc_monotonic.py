"""RL102 bad fixture: every non-monotone vector-clock shape.

Decrement, negative increment, component reset, whole-vector rebind,
and the BrokenANBKH delivery loop that skips component 0.
"""

VT_KEY = "vt"


class SaggingClock:
    def __init__(self, process_id, n_processes):
        self.process_id = process_id
        self.n_processes = n_processes
        self.vc = [0] * n_processes

    def retire(self, u):
        self.vc[u] -= 1

    def backdate(self, u):
        self.vc[u] += -1

    def reset(self, u):
        self.vc[u] = 0

    def adopt(self, incoming):
        self.vc = incoming

    def can_deliver(self, msg, u):
        vt = msg.payload[VT_KEY]
        for t in range(1, self.n_processes):
            if t != u and vt[t] > self.vc[t]:
                return False
        return True
