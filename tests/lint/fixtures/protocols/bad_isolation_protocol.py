"""RL007 bad fixture (protocol zone): a protocol that sees the topology."""


class NosyProtocol:
    def __init__(self, cluster):
        self.cluster = cluster

    def classify(self, msg):
        peer = self.cluster.nodes[msg.sender]  # protocols must not see nodes
        if peer.protocol.writes_issued > 0:
            return "apply"
        return "buffer"
