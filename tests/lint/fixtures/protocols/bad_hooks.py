"""RL005 bad fixture: declared capabilities without their handlers."""

from repro.core.base import Disposition, Protocol


class TimerlessProtocol(Protocol):
    name = "timerless"
    timer_interval = 2.5  # declared, but no on_timer below

    def write(self, variable, value):
        raise NotImplementedError

    def read(self, variable):
        raise NotImplementedError

    def classify(self, msg):
        raise NotImplementedError

    def apply_update(self, msg):
        raise NotImplementedError


class SilentDiscardProtocol(Protocol):
    name = "silent-discard"
    in_class_p = False  # declared, but no missing_applies below

    def write(self, variable, value):
        raise NotImplementedError

    def read(self, variable):
        raise NotImplementedError

    def classify(self, msg):
        return Disposition.DISCARD  # but no discard_update below

    def apply_update(self, msg):
        raise NotImplementedError
