"""RL005 good fixture: every declared capability has its handler."""

from repro.core.base import Disposition, Protocol


class FullyDeclaredProtocol(Protocol):
    name = "fully-declared"
    timer_interval = 2.5
    in_class_p = False

    def write(self, variable, value):
        raise NotImplementedError

    def read(self, variable):
        raise NotImplementedError

    def classify(self, msg):
        return Disposition.DISCARD

    def apply_update(self, msg):
        raise NotImplementedError

    def discard_update(self, msg):
        pass

    def on_timer(self):
        return ()

    def missing_applies(self):
        return 0


class PlainProtocol(Protocol):
    """No timer, never discards, stays in class P: nothing extra needed."""

    name = "plain"
    timer_interval = None

    def write(self, variable, value):
        raise NotImplementedError

    def read(self, variable):
        raise NotImplementedError

    def classify(self, msg):
        return Disposition.APPLY

    def apply_update(self, msg):
        raise NotImplementedError
