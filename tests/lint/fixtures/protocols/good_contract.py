"""RL004 good fixture: complete hook set, properly paired scheduling."""

from repro.core.base import Protocol


class CompleteProtocol(Protocol):
    name = "complete"

    def write(self, variable, value):
        raise NotImplementedError

    def read(self, variable):
        raise NotImplementedError

    def classify(self, msg):
        raise NotImplementedError

    def apply_update(self, msg):
        raise NotImplementedError

    def missing_deps(self, msg):
        return []

    def apply_event(self, msg):
        return (msg.sender, msg.wid.seq)


class DefaultKeyedProtocol(Protocol):
    """missing_deps alone is fine: the default apply_event keying fits."""

    name = "default-keyed"

    def write(self, variable, value):
        raise NotImplementedError

    def read(self, variable):
        raise NotImplementedError

    def classify(self, msg):
        raise NotImplementedError

    def apply_update(self, msg):
        raise NotImplementedError

    def missing_deps(self, msg):
        return None
