"""RL003 bad fixture: all five aliasing patterns."""

from repro.core.base import Outgoing, Protocol, UpdateMessage, WriteOutcome


class LeakyProtocol(Protocol):
    name = "leaky"

    def __init__(self, process_id, n_processes):
        super().__init__(process_id, n_processes)
        self.write_co = [0] * n_processes
        self.last_write_on = {}

    def write(self, variable, value):
        self.write_co[self.process_id] += 1
        wid = self.next_wid()
        vp = {variable: self.write_co}
        msg = UpdateMessage(
            sender=self.process_id, wid=wid, variable=variable, value=value,
            payload={"write_co": self.write_co, "var_past": vp},
        )
        self.last_write_on[variable] = vp  # aliases the in-flight payload
        return WriteOutcome(wid=wid, outgoing=(Outgoing(msg),))

    def read(self, variable):
        raise NotImplementedError

    def classify(self, msg):
        raise NotImplementedError

    def apply_update(self, msg):
        self.last_write_on[msg.variable] = msg.payload["write_co"]
        w_co = msg.payload.get("write_co")
        self.write_co = w_co

    def mirror(self, other_vec=None):
        self.last_write_on["mirror"] = self.write_co

    def debug_state(self):
        return {"write_co": self.write_co}
