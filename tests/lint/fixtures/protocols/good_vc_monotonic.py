"""RL102 good fixture: the sanctioned monotone update idioms.

Increment, read-modify-write, component-wise max, guarded max, a join
helper, and a full-range delivery loop.
"""

VT_KEY = "vt"


class MonotoneClock:
    def __init__(self, process_id, n_processes):
        self.process_id = process_id
        self.n_processes = n_processes
        self.vc = [0] * n_processes

    def tick(self):
        self.vc[self.process_id] += 1

    def bump(self):
        self.vc[self.process_id] = self.vc[self.process_id] + 1

    def join_max(self, vt):
        for t in range(self.n_processes):
            self.vc[t] = max(self.vc[t], vt[t])

    def join_guarded(self, vt):
        for t in range(0, self.n_processes):
            if vt[t] > self.vc[t]:
                self.vc[t] = vt[t]

    def rejoin(self, vt):
        self.vc = self._join(vt)

    def _join(self, vt):
        return [max(a, b) for a, b in zip(self.vc, vt)]

    def can_deliver(self, msg, u):
        vt = msg.payload[VT_KEY]
        for t in range(self.n_processes):
            if t != u and vt[t] > self.vc[t]:
                return False
        return True
