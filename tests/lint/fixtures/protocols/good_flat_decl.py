"""RL004 good fixture: flat declarations in sync with the hooks."""


class BaseProtocol:
    supports_flat_state = False


class FullyFlat(BaseProtocol):
    supports_flat_state = True

    def enable_flat_state(self, deps):
        self._flat = deps

    def flat_progress(self):
        return 0

    def flat_deps(self, wid):
        return ()

    def missing_deps(self, msg):
        return ()


class PlainDeliverer(BaseProtocol):
    def classify(self, msg):
        return None
