"""RL103 bad fixture: a sim-zone driver reaching the wall clock
through a helper module (one finding: the ``now_ms`` call)."""

from flowproj.util.helpers import now_ms, span


def stamp(events):
    return [(now_ms(), event) for event in events]


def lanes(n):
    return span(n)
