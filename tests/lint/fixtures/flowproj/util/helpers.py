"""Zone-neutral helpers for the RL103 fixture tree.

The wall-clock read lives *outside* the determinism zones, so RL001
never fires here -- only the call graph can carry the fact into sim.
"""

import time


def now_ms():
    return time.time() * 1000.0


def span(n):
    return tuple(range(n))
