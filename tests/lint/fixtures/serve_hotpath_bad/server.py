"""RL006 bad fixture: ungated instrumentation on the serving hot path.

The filename (``server.py``) is what makes this a hot-path module.
"""


class ReplicaServer:
    def __init__(self, obs):
        self._obs = obs
        reg = obs.registry
        self._m_requests = reg.counter("serve.requests")  # ungated lookup
        self._g_inflight = reg.gauge("serve.inflight")

    def on_request(self, ops, inflight):
        self._m_requests.inc()  # ungated counter bump
        self._g_inflight.set(len(inflight))  # ungated gauge set
