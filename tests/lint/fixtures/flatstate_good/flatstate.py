"""RL006 good fixture: flat-backend hooks gated, ``and``-chain form."""


class PendingMatrix:
    def __init__(self, n_components, obs=None):
        self._obs = obs
        if obs is not None and obs.enabled:
            reg = obs.registry
            self._m_adds = reg.counter("flat.pending_adds")
            self._g_rows = reg.gauge("flat.pending_rows")

    def add(self, deps):
        if self._obs is not None and self._obs.enabled:
            self._m_adds.inc()
            self._g_rows.set(1)
