"""RL006 bad fixture: ungated flat-backend instrumentation.

The filename (``flatstate.py``) is what makes this hot-path -- the flat
backend's pending-set ops run once per buffered delivery.
"""


class PendingMatrix:
    def __init__(self, n_components, obs=None):
        self._obs = obs
        reg = obs.registry
        self._m_adds = reg.counter("flat.pending_adds")  # ungated lookup
        self._g_rows = reg.gauge("flat.pending_rows")

    def add(self, deps):
        self._m_adds.inc()  # ungated counter bump
        self._g_rows.set(1)  # ungated gauge set
