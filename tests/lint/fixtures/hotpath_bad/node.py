"""RL006 bad fixture: ungated instrumentation on the hot path.

The filename (``node.py``) is what makes this a hot-path module.
"""


class Node:
    def __init__(self, obs):
        self._obs = obs
        reg = obs.registry
        self._m_applies = reg.counter("node.applies")  # ungated lookup
        self._g_depth = reg.gauge("node.depth")

    def on_apply(self, msg, pending):
        self._m_applies.inc()  # ungated counter bump
        self._g_depth.set(len(pending))  # ungated gauge set
        self._obs.sink.on_apply(0.0, 0, msg.wid)  # ungated sink callback
