"""The ``repro-dsm lint`` subcommand: exit codes and output formats."""

import json

import pytest

from repro.cli import main


def test_lint_clean_tree_exits_zero(capsys):
    assert main(["lint", "src/repro"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_lint_findings_exit_one(capsys):
    rc = main(["lint", "tests/lint/fixtures/sim/bad_determinism.py"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "RL001" in out
    assert "bad_determinism.py" in out


def test_lint_json_format(capsys):
    rc = main(["lint", "--format", "json",
               "tests/lint/fixtures/sim/bad_determinism.py"])
    assert rc == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is False
    assert doc["counts"]["RL001"] >= 4


def test_lint_select_narrows_rules(capsys):
    rc = main(["lint", "--select", "RL002",
               "tests/lint/fixtures/sim/bad_determinism.py"])
    assert rc == 0
    rc = main(["lint", "--ignore", "RL001",
               "tests/lint/fixtures/sim/bad_determinism.py"])
    assert rc == 0
    rc = main(["lint", "--select", "RL001,RL002",
               "tests/lint/fixtures/sim/bad_determinism.py"])
    assert rc == 1
    capsys.readouterr()


def test_lint_unknown_code_is_usage_error(capsys):
    assert main(["lint", "--select", "RLXYZ", "src/repro"]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_lint_missing_path_is_usage_error(capsys):
    assert main(["lint", "no/such/dir"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_lint_catalog(capsys):
    assert main(["lint", "--catalog"]) == 0
    out = capsys.readouterr().out
    for code in ("RL001", "RL007"):
        assert code in out


def test_seeded_violation_fails_a_fixture_copy(tmp_path, capsys):
    """Mirror of the CI self-check: copying a clean sim/ fixture and
    injecting a wall-clock call must flip the exit code to 1.  The
    copy keeps the ``sim`` directory so zone inference still applies."""
    import shutil

    src = "tests/lint/fixtures/sim/good_determinism.py"
    dest_dir = tmp_path / "sim"
    dest_dir.mkdir()
    dest = dest_dir / "good_determinism.py"
    shutil.copy(src, dest)
    assert main(["lint", str(dest)]) == 0
    dest.write_text(dest.read_text()
                    + "\nimport time\n\ndef t():\n    return time.time()\n")
    assert main(["lint", str(dest)]) == 1
    assert "RL001" in capsys.readouterr().out


def test_lint_default_path_is_the_package(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_lint_flow_gate_is_clean_and_selects_flow_rules(capsys):
    """The CI lint-flow gate in miniature: ``lint --flow src/repro``
    exits 0 and the JSON report shows RL101-RL104 were applied."""
    rc = main(["lint", "--flow", "--format", "json", "src/repro"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is True
    applied = set(doc["rules_applied"])
    assert {"RL101", "RL102", "RL103", "RL104"} <= applied


def test_lint_flow_flags_seeded_payload_escape(capsys):
    """Mirror of the CI mutant self-check: the flow rules must flag
    the LeakyOptP-style payload mutation on a fixture copy."""
    rc = main(["lint", "--flow",
               "tests/lint/fixtures/protocols/bad_payload_escape.py"])
    assert rc == 1
    assert "RL101" in capsys.readouterr().out


def test_lint_without_flow_skips_flow_rules(capsys):
    rc = main(["lint",
               "tests/lint/fixtures/protocols/bad_payload_escape.py"])
    assert rc == 0
    capsys.readouterr()
