"""CFG builder + dataflow engine unit tests on the tricky shapes:
branch joins, loop back edges, break/continue, try/except/finally,
dead code, comprehensions, and nested defs."""

import ast
import textwrap

from repro.lint.flow import build_cfg
from repro.lint.flow.escape import ESCAPED, FROZEN, MUTABLE, EscapeAnalysis


def func_of(src):
    return ast.parse(textwrap.dedent(src)).body[0]


def cfg_of(src):
    return build_cfg(func_of(src))


def before_states(src):
    func = func_of(src)
    cfg = build_cfg(func)
    return EscapeAnalysis(None, None, None, None).run(cfg), func


def assign_to(func, name):
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id == name:
            return node
    raise AssertionError(f"no assignment to {name}")


def reachable(cfg):
    seen, stack = set(), [cfg.entry]
    while stack:
        block = stack.pop()
        if block.bid in seen:
            continue
        seen.add(block.bid)
        stack.extend(block.succs)
    return seen


# -- structure --------------------------------------------------------------

def test_straight_line_is_one_block():
    cfg = cfg_of("""
        def f(n):
            a = 1
            b = a + n
            return b
    """)
    assert len(cfg.entry.stmts) == 3
    assert cfg.entry.succs == [cfg.exit]


def test_comprehensions_and_ternaries_do_not_split_blocks():
    cfg = cfg_of("""
        def f(items, flag):
            rows = [x for x in items if x]
            pick = rows[0] if flag else None
            return pick
    """)
    assert len(cfg.entry.stmts) == 3


def test_nested_def_is_an_ordinary_statement():
    cfg = cfg_of("""
        def f(n):
            def inner():
                return n + 1
            return inner
    """)
    # the nested def binds a name; its body statements are not threaded
    # into the enclosing graph
    assert len(cfg.entry.stmts) == 2
    assert isinstance(cfg.entry.stmts[0], ast.FunctionDef)


def test_dead_code_after_return_has_no_predecessors():
    cfg = cfg_of("""
        def f():
            return 1
            dead = 2
    """)
    dead_blocks = [
        b for b in cfg.blocks
        if any(isinstance(s, ast.Assign) for s in b.stmts)
    ]
    assert len(dead_blocks) == 1
    assert dead_blocks[0].preds == []
    assert dead_blocks[0].bid not in reachable(cfg)


def test_break_and_continue_target_the_loop_edges():
    cfg = cfg_of("""
        def f(items):
            for x in items:
                if x:
                    break
                continue
            tail = 1
            return tail
    """)
    # every statement-bearing block except none is reachable: break
    # exits to the after-block, continue returns to the header
    live = reachable(cfg)
    for block in cfg.blocks:
        if block.stmts:
            assert block.bid in live
    assert cfg.exit.bid in live


def test_while_loop_has_back_edge_and_exit_edge():
    cfg = cfg_of("""
        def f(n):
            while n:
                n = n - 1
            return n
    """)
    body_blocks = [
        b for b in cfg.blocks
        if any(isinstance(s, ast.Assign) for s in b.stmts)
    ]
    assert len(body_blocks) == 1
    header = body_blocks[0].succs[0]
    assert body_blocks[0] in header.succs  # back edge closes the loop


# -- dataflow over the graph ------------------------------------------------

def test_branch_join_unions_both_facts():
    before, func = before_states("""
        def f(n):
            if n:
                x = [0] * n
            else:
                x = tuple(n)
            y = x
    """)
    flags = before[id(assign_to(func, "y"))]["x"]
    assert MUTABLE in flags and FROZEN in flags


def test_loop_back_edge_carries_escape_into_next_iteration():
    # the payload placement happens *after* the mutation in source
    # order; only the back edge makes the taint visible at the append
    before, func = before_states("""
        def f(n, vec):
            vec = [0] * n
            while n:
                vec.append(1)
                msg = UpdateMessage(
                    sender=0, wid=1, variable="x", value=1,
                    payload={"v": vec},
                )
    """)
    append_stmt = next(
        s for s in ast.walk(func)
        if isinstance(s, ast.Expr) and isinstance(s.value, ast.Call)
    )
    assert ESCAPED in before[id(append_stmt)]["vec"]


def test_except_handler_sees_partial_try_state():
    before, func = before_states("""
        def f(n):
            try:
                x = [0] * n
            except ValueError as exc:
                x = ()
            y = x
    """)
    flags = before[id(assign_to(func, "y"))]["x"]
    assert MUTABLE in flags and FROZEN in flags


def test_finally_fact_dominates_statements_after_try():
    before, func = before_states("""
        def f(n, maybe):
            x = [0] * n
            try:
                x = maybe(n)
            finally:
                x = tuple(x)
            y = x
    """)
    assert before[id(assign_to(func, "y"))]["x"] == frozenset({FROZEN})


def test_rebinding_clears_the_mutable_taint():
    before, func = before_states("""
        def f(n):
            vec = [0] * n
            vec = tuple(vec)
            done = vec
    """)
    assert before[id(assign_to(func, "done"))]["vec"] == frozenset({FROZEN})
