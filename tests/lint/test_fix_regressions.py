"""Trace-identity regression tests for the reprolint-driven fixes.

The analyzer flagged three real aliasing/ordering hazards in the
protocol code (the ``vp`` payload aliases in ``partial``/``ws-receiver``
writes, and the frozenset validation loop in ``ReplicationMap``).  The
fixes replace aliases with copies and unordered iteration with sorted
iteration -- pure hygiene that must not change behavior.  These digests
were captured *before* the fixes; byte-identical traces after prove the
fixes are semantics-preserving, and pin the hazard sites against future
regressions (an actual cross-boundary mutation would shift the traces).
"""

import hashlib

import pytest

from repro.protocols.partial import ReplicationMap, partial_factory
from repro.sim import SeededLatency, run_schedule
from repro.sim.serialize import trace_to_jsonl
from repro.workloads import WorkloadConfig, random_schedule
from repro.workloads.generators import random_partial_schedule

#: sha256(trace_to_jsonl(...)) captured on the pre-fix code.
PINNED = {
    ("ws-receiver", 0):
        "ff020d180343efa6d1629a3d1e7ee54c96f8f787bfe8d25c058c97e7e4d4a0bb",
    ("ws-receiver", 3):
        "098ceab42d34b61971cb2d46bfb4ff131cc28dfed2097c393f9075ade282c5e1",
    ("partial", 0):
        "1a6b9c1ba3e405af226bc83f971c7bb3c4060691013b3d2305ffac37b156d78a",
    ("partial", 3):
        "1c3805666c551944a0a4d63ac2b71e2833f705d64e736c3f3700f2dd0e2b7cbc",
}


def _digest(result):
    return hashlib.sha256(trace_to_jsonl(result.trace).encode()).hexdigest()


def _config(seed):
    return WorkloadConfig(n_processes=4, ops_per_process=14, n_variables=4,
                          write_fraction=0.6, seed=seed)


@pytest.mark.parametrize("seed", [0, 3])
def test_ws_receiver_trace_unchanged_by_aliasing_fix(seed):
    result = run_schedule(
        "ws-receiver", 4, random_schedule(_config(seed)),
        latency=SeededLatency(seed, dist="exponential", mean=2.5),
        record_state=True,
    )
    assert _digest(result) == PINNED[("ws-receiver", seed)]


@pytest.mark.parametrize("seed", [0, 3])
def test_partial_trace_unchanged_by_aliasing_fix(seed):
    cfg = _config(seed)
    variables = [f"x{i}" for i in range(cfg.n_variables)]
    rmap = ReplicationMap.round_robin(variables, cfg.n_processes, 2)
    result = run_schedule(
        partial_factory(rmap), 4, random_partial_schedule(cfg, rmap),
        latency=SeededLatency(seed, dist="exponential", mean=2.5),
        record_state=True,
    )
    assert _digest(result) == PINNED[("partial", seed)]


def test_payload_no_longer_aliased_into_state():
    """Direct check of the fixed hazard: the in-flight payload is
    *deeply immutable* (pair-tuple wire form), so nothing reachable
    from it can be mutated through protocol state.  The stored
    per-variable past shares that wire tuple by design (no per-write
    rebuild; the explicit RL003 suppression at the store site records
    the argument) -- safe precisely because every level is a tuple."""
    rmap = ReplicationMap.round_robin(["x0", "x1"], 2, 2)
    proto = partial_factory(rmap)(0, 2)
    outcome = proto.write("x0", 41)
    payload_vp = outcome.outgoing[0].message.payload["var_past"]
    stored_vp = proto.last_var_past_on["x0"]
    assert isinstance(payload_vp, tuple)
    assert all(isinstance(pair, tuple) for pair in payload_vp)
    assert all(isinstance(vec, tuple) for _var, vec in payload_vp)
    assert stored_vp == payload_vp
