"""Runner/report behaviors: collection order, parse errors, selection,
JSON stability, and the repo-wide self-check (the acceptance gate)."""

import json
from pathlib import Path

import pytest

from repro.lint import (
    PARSE_ERROR,
    all_rules,
    collect_files,
    lint_file,
    lint_paths,
    rule_catalog,
)

FIXTURES = Path("tests/lint/fixtures")


def test_collect_files_sorted_and_deduped(tmp_path):
    (tmp_path / "b.py").write_text("x = 1\n")
    (tmp_path / "a.py").write_text("x = 1\n")
    sub = tmp_path / "__pycache__"
    sub.mkdir()
    (sub / "skip.py").write_text("x = 1\n")
    files = collect_files([tmp_path, tmp_path / "a.py"])
    assert files == [tmp_path / "a.py", tmp_path / "b.py"]


def test_parse_error_is_a_finding_not_a_crash(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    findings = lint_file(bad, all_rules())
    assert [f.code for f in findings] == [PARSE_ERROR]


def test_select_and_ignore():
    bad = FIXTURES / "sim" / "bad_determinism.py"
    only_002 = lint_file(bad, all_rules(select=["RL002"]))
    assert only_002 == []
    without_001 = lint_file(bad, all_rules(ignore=["RL001"]))
    assert without_001 == []
    with pytest.raises(ValueError):
        all_rules(select=["RLXYZ"])
    with pytest.raises(ValueError):
        all_rules(ignore=["RLXYZ"])


def test_report_json_shape():
    report = lint_paths([FIXTURES / "sim"])
    doc = json.loads(report.to_json())
    assert set(doc) == {
        "ok", "files_scanned", "rules_applied", "counts", "findings",
        "suppressed",
    }
    assert doc["ok"] is False
    assert doc["counts"]["RL001"] >= 4
    first = doc["findings"][0]
    assert set(first) == {"path", "line", "col", "code", "rule", "message"}


def test_report_is_deterministic():
    a = lint_paths([FIXTURES]).to_json()
    b = lint_paths([FIXTURES]).to_json()
    assert a == b


def test_rule_catalog_is_complete():
    codes = [r.code for r in rule_catalog()]
    assert codes == ["RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
                     "RL007", "RL008", "RL009",
                     "RL101", "RL102", "RL103", "RL104"]
    assert all(r.summary for r in rule_catalog())


def test_flow_rules_are_gated_behind_flag():
    codes = {r.code for r in all_rules()}
    assert not codes & {"RL101", "RL102", "RL103", "RL104"}
    codes = {r.code for r in all_rules(flow=True)}
    assert {"RL101", "RL102", "RL103", "RL104"} <= codes
    # an explicit --select overrides the gate
    codes = {r.code for r in all_rules(select=["RL101"])}
    assert codes == {"RL101"}


def test_repo_is_lint_clean():
    """The acceptance gate: zero unsuppressed findings over src/repro."""
    report = lint_paths([Path("src/repro")])
    assert report.ok, report.to_text()
    assert report.files_scanned > 50
    # the sanctioned suppressions: the gossip digest-row alias, the
    # sweep worker's two observational wall-clock reads, the sweep
    # runner's pluggable worker field (a module-level function stored
    # on the instance -- RL008's bound-method heuristic misreads it),
    # the serve timebase (the single wall-clock chokepoint every
    # serving module routes through), and the protocols'
    # deeply-immutable wire-tuple stores (last_write_on /
    # last_var_past_on: sharing the frozen payload is safe, and
    # rebuilding it per write is the allocation the flat backend
    # exists to avoid -- see docs/static-analysis.md)
    by_file = sorted(
        (f.path.rsplit("/", 1)[-1], f.code) for f in report.suppressed
    )
    assert by_file == [
        ("gossip.py", "RL003"),
        ("optp.py", "RL003"),
        ("partial.py", "RL003"),
        ("partial.py", "RL003"),
        ("runner.py", "RL008"),
        ("timebase.py", "RL001"),
        ("worker.py", "RL001"),
        ("worker.py", "RL001"),
        ("ws_receiver.py", "RL003"),
        ("ws_receiver.py", "RL003"),
        ("ws_receiver.py", "RL003"),
    ]


def test_repo_is_flow_clean():
    """The flow acceptance gate: RL101-RL104 report nothing over
    src/repro, with zero *new* suppressions.  Every payload value the
    protocols ship is frozen at its binding site (tuple-on-the-wire),
    so the escape analysis proves the sends safe rather than flagging
    them -- see docs/static-analysis.md."""
    report = lint_paths([Path("src/repro")], flow=True)
    assert report.ok, report.to_text()
    assert {"RL101", "RL102", "RL103", "RL104"} <= set(report.rules_applied)
    # the syntactic gate's suppressions plus exactly three flow-rule
    # ones: the durability restores.  restore_state rewrites the
    # apply/write_co vectors wholesale from a snapshot; RL102's
    # monotonicity discipline governs live protocol steps, not crash
    # recovery (see docs/fault-tolerance.md)
    assert len(report.suppressed) == 14
    flow_only = sorted(
        (f.path.rsplit("/", 1)[-1], f.code)
        for f in report.suppressed
        if f.code in {"RL101", "RL102", "RL103", "RL104"}
    )
    assert flow_only == [
        ("anbkh.py", "RL102"),
        ("optp.py", "RL102"),
        ("optp.py", "RL102"),
    ]
