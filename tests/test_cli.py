"""Tests for the repro-dsm command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "optp" and args.processes == 4

    def test_protocol_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "-p", "bogus"])

    def test_scenario_choices(self):
        args = build_parser().parse_args(["scenario", "fig3"])
        assert args.name == "fig3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "fig99"])


class TestCommands:
    def test_artifacts_subset(self, capsys):
        assert main(["artifacts", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_run_verifies(self, capsys):
        rc = main(["run", "-p", "optp", "-n", "3", "--ops", "6", "--seed", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "legal safe live" in out
        assert "unnecessary=0" in out.replace("unnec", "unnecessary", 1) or "unnecessary=0" in out

    def test_run_with_diagram(self, capsys):
        rc = main(["run", "-n", "3", "--ops", "4", "--diagram"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "legend:" in out

    def test_compare(self, capsys):
        rc = main([
            "compare", "-n", "3", "--ops", "6", "--seeds", "0",
            "--protocols", "optp", "anbkh",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "optp" in out and "anbkh" in out

    def test_scenario_anbkh_reports_unnecessary(self, capsys):
        rc = main(["scenario", "fig3", "-p", "anbkh"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "UNNECESSARY delay" in out

    def test_scenario_optp_clean(self, capsys):
        rc = main(["scenario", "fig3", "-p", "optp", "--diagram"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "UNNECESSARY" not in out
        assert "legend:" in out

    def test_dump_and_replay(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["run", "-p", "optp", "-n", "3", "--ops", "6",
                     "--seed", "2", "--dump-trace", str(path)]) == 0
        capsys.readouterr()
        assert main(["replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "legality: causally consistent" in out
        assert "safety:   ok" in out
        assert "sessions: all session guarantees hold" in out

    def test_replay_flags_bad_trace(self, tmp_path, capsys):
        """A doctored trace (applies out of causal order) must fail."""
        from repro.model.operations import WriteId
        from repro.sim.serialize import trace_to_jsonl
        from repro.sim.trace import EventKind, Trace

        t = Trace(2)
        t.record(0.0, 0, EventKind.WRITE, wid=WriteId(0, 1), variable="x", value=1)
        t.record(0.0, 0, EventKind.SEND, wid=WriteId(0, 1))
        t.record(1.0, 0, EventKind.WRITE, wid=WriteId(0, 2), variable="y", value=2)
        t.record(1.0, 0, EventKind.SEND, wid=WriteId(0, 2))
        t.record(2.0, 1, EventKind.APPLY, wid=WriteId(0, 2), variable="y", value=2)
        t.record(3.0, 1, EventKind.APPLY, wid=WriteId(0, 1), variable="x", value=1)
        path = tmp_path / "bad.jsonl"
        path.write_text(trace_to_jsonl(t))
        assert main(["replay", str(path)]) == 1
        assert "applied" in capsys.readouterr().out

    def test_sweep_small(self, capsys):
        # use the smallest axis/seed set; still a real sweep
        rc = main(["sweep", "zipf", "--seeds", "0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "zipf_s" in out


class TestObservability:
    def test_run_exports_trace_and_metrics(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        trace_path = tmp_path / "run.json"
        metrics_path = tmp_path / "metrics.json"
        rc = main([
            "run", "-p", "optp", "-n", "3", "--ops", "6", "--seed", "1",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0

        doc = json.loads(trace_path.read_text())
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["protocol"] == "optp"

        saved = json.loads(metrics_path.read_text())
        assert saved["protocol"] == "optp"
        assert saved["metrics"]["counters"]["node.writes"]
        assert str(trace_path) in out

    def test_obs_summarizes_saved_metrics(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        main([
            "run", "-p", "optp", "-n", "3", "--ops", "6", "--seed", "1",
            "--metrics-out", str(metrics_path),
        ])
        capsys.readouterr()
        rc = main(["obs", str(metrics_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "protocol: optp" in out
        assert "node.applies" in out

    def test_obs_rejects_non_metrics_file(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("[1, 2]")
        assert main(["obs", str(bogus)]) == 2
        assert main(["obs", str(tmp_path / "missing.json")]) == 2

    def test_run_without_export_prints_no_paths(self, capsys):
        rc = main(["run", "-p", "optp", "-n", "3", "--ops", "6",
                   "--seed", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "trace-out" not in out
