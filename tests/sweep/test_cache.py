"""The result cache's contract: hits return the stored payload,
everything suspicious degrades to a recomputing miss, and any change
to spec, seed, or code fingerprint addresses a different entry."""

import json

import pytest

from repro.sweep import (
    CACHE_VERSION,
    LatencySpec,
    RunCache,
    RunSpec,
    SweepRunner,
    code_fingerprint,
    spec_digest,
)
from repro.workloads.generators import WorkloadConfig


def spec(seed=0, protocol="optp"):
    return RunSpec(
        protocol=protocol,
        n_processes=3,
        config=WorkloadConfig(n_processes=3, ops_per_process=5, seed=seed),
        latency=LatencySpec.seeded(seed),
    )


KEY = "ab" + "0" * 62
PAYLOAD = {"answer": 42}


class TestGetPut:
    def test_miss_on_empty_cache(self, tmp_path):
        assert RunCache(tmp_path).get(KEY) is None

    def test_put_then_get(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(KEY, PAYLOAD)
        assert cache.get(KEY) == PAYLOAD
        assert len(cache) == 1

    def test_layout_is_sharded_by_prefix(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(KEY, PAYLOAD)
        assert (tmp_path / "ab" / f"{KEY}.json").is_file()

    def test_malformed_key_rejected(self, tmp_path):
        cache = RunCache(tmp_path)
        with pytest.raises(ValueError, match="malformed cache key"):
            cache.get("../../etc/passwd")
        with pytest.raises(ValueError, match="malformed cache key"):
            cache.put("zz", PAYLOAD)

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(KEY, PAYLOAD)
        leftovers = [p for p in tmp_path.rglob("*") if p.is_file()
                     and p.suffix != ".json"]
        assert leftovers == []


class TestCorruption:
    def entry_path(self, cache):
        cache.put(KEY, PAYLOAD)
        return cache.path_for(KEY)

    def test_invalid_json_discarded(self, tmp_path):
        cache = RunCache(tmp_path)
        path = self.entry_path(cache)
        path.write_text("{not json")
        assert cache.get(KEY) is None
        assert cache.discarded == 1
        assert not path.exists()

    def test_truncated_entry_discarded(self, tmp_path):
        cache = RunCache(tmp_path)
        path = self.entry_path(cache)
        path.write_text(path.read_text()[:20])
        assert cache.get(KEY) is None
        assert cache.discarded == 1

    def test_wrong_version_discarded(self, tmp_path):
        cache = RunCache(tmp_path)
        path = self.entry_path(cache)
        doc = json.loads(path.read_text())
        doc["cache_version"] = CACHE_VERSION + 1
        path.write_text(json.dumps(doc))
        assert cache.get(KEY) is None
        assert cache.discarded == 1

    def test_key_mismatch_discarded(self, tmp_path):
        """A parseable entry whose recorded key disagrees with its
        address (e.g. a copy under the wrong name) is never trusted."""
        cache = RunCache(tmp_path)
        path = self.entry_path(cache)
        doc = json.loads(path.read_text())
        doc["key"] = "cd" + "0" * 62
        path.write_text(json.dumps(doc))
        assert cache.get(KEY) is None

    def test_non_dict_payload_discarded(self, tmp_path):
        cache = RunCache(tmp_path)
        path = self.entry_path(cache)
        path.write_text(json.dumps(
            {"cache_version": CACHE_VERSION, "key": KEY, "payload": [1]}
        ))
        assert cache.get(KEY) is None

    def test_corrupted_entry_recomputed_by_runner(self, tmp_path):
        """End to end: corrupt the entry between two identical sweeps;
        the second run discards it, recomputes, and rewrites a valid
        entry with the same metrics."""
        cache = RunCache(tmp_path)
        runner = SweepRunner(cache=cache)
        [first] = runner.run([spec()])
        [path] = list(tmp_path.glob("*/*.json"))
        path.write_text("garbage")
        [second] = SweepRunner(cache=cache).run([spec()])
        assert second == first
        assert cache.discarded == 1
        assert cache.get(spec_digest(spec(), code_fingerprint())) is not None


class TestInvalidation:
    def test_spec_change_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        runner = SweepRunner(cache=cache)
        runner.run([spec(protocol="optp")])
        runner.run([spec(protocol="anbkh")])
        assert runner.stats.cache_hits == 0
        assert runner.stats.cache_misses == 2
        assert len(cache) == 2

    def test_seed_change_is_a_miss(self, tmp_path):
        runner = SweepRunner(cache=RunCache(tmp_path))
        runner.run([spec(seed=0)])
        runner.run([spec(seed=1)])
        assert runner.stats.cache_misses == 2

    def test_same_spec_is_a_hit(self, tmp_path):
        runner = SweepRunner(cache=RunCache(tmp_path))
        runner.run([spec()])
        runner.run([spec()])
        assert runner.stats.cache_hits == 1
        assert runner.stats.cache_misses == 1

    def test_fingerprint_change_is_a_miss(self, tmp_path):
        """Simulated code change: the same spec under a different code
        fingerprint must recompute, not reuse."""
        cache = RunCache(tmp_path)
        old = SweepRunner(cache=cache, fingerprint="a" * 64)
        old.run([spec()])
        new = SweepRunner(cache=cache, fingerprint="b" * 64)
        new.run([spec()])
        assert old.stats.cache_misses == 1
        assert new.stats.cache_hits == 0
        assert new.stats.cache_misses == 1
        assert len(cache) == 2


class TestCodeFingerprint:
    def test_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()

    def test_package_subset_changes_value(self):
        assert code_fingerprint(("sim",)) != code_fingerprint(("core",))

    def test_unknown_package_raises(self):
        with pytest.raises(ValueError, match="no such repro subpackage"):
            code_fingerprint(("nonexistent",))
