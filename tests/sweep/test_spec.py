"""Spec canonicalization and digests: stable where it must be, and
sensitive to every field that changes a run's results."""

import json
from dataclasses import replace

import pytest

from repro.sim.latency import ConstantLatency, SeededLatency
from repro.sweep import LatencySpec, RunSpec, canonical_spec, spec_digest
from repro.workloads.generators import WorkloadConfig


def spec(**overrides):
    base = dict(
        protocol="optp",
        n_processes=4,
        config=WorkloadConfig(n_processes=4, ops_per_process=10, seed=0),
        latency=LatencySpec.seeded(0),
    )
    base.update(overrides)
    return RunSpec(**base)


class TestDigestStability:
    def test_same_spec_same_digest(self):
        assert spec_digest(spec()) == spec_digest(spec())

    def test_digest_is_hex_sha256(self):
        d = spec_digest(spec())
        assert len(d) == 64
        assert set(d) <= set("0123456789abcdef")

    def test_canonical_form_is_json_stable(self):
        a = json.dumps(canonical_spec(spec()), sort_keys=True)
        b = json.dumps(canonical_spec(spec()), sort_keys=True)
        assert a == b

    def test_known_canonical_shape(self):
        doc = canonical_spec(spec())
        assert set(doc) == {"version", "protocol", "n_processes",
                            "config", "latency", "verify"}
        assert doc["protocol"] == "optp"
        assert doc["config"]["seed"] == 0
        assert doc["latency"]["kind"] == "seeded"


class TestDigestSensitivity:
    @pytest.mark.parametrize("mutation", [
        dict(protocol="anbkh"),
        dict(n_processes=5),
        dict(config=WorkloadConfig(n_processes=4, ops_per_process=10,
                                   seed=1)),
        dict(config=WorkloadConfig(n_processes=4, ops_per_process=11,
                                   seed=0)),
        dict(latency=LatencySpec.seeded(1)),
        dict(latency=LatencySpec.seeded(0, mean=3.0)),
        dict(latency=LatencySpec.constant(1.0)),
        dict(verify=False),
    ])
    def test_every_field_changes_digest(self, mutation):
        assert spec_digest(spec()) != spec_digest(spec(**mutation))

    def test_fingerprint_changes_digest(self):
        s = spec()
        assert spec_digest(s) != spec_digest(s, "f" * 64)
        assert spec_digest(s, "a" * 64) != spec_digest(s, "b" * 64)

    def test_fingerprint_keyed_digest_is_stable(self):
        s = spec()
        assert spec_digest(s, "a" * 64) == spec_digest(s, "a" * 64)


class TestLatencySpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown latency kind"):
            LatencySpec(kind="warp")

    def test_seeded_build(self):
        model = LatencySpec.seeded(7, dist="uniform", lo=1.0, hi=2.0).build()
        assert isinstance(model, SeededLatency)

    def test_constant_build(self):
        model = LatencySpec.constant(1.5).build()
        assert isinstance(model, ConstantLatency)
        assert model.delay == 1.5

    def test_build_returns_fresh_instances(self):
        ls = LatencySpec.seeded(3)
        assert ls.build() is not ls.build()

    def test_seeded_build_matches_direct_construction(self):
        """The spec reproduces the exact delays of the model the serial
        sweeps used to construct inline: SeededLatency is a pure
        function of its constructor parameters and the message key, so
        parameter equality is delay equality."""
        built = LatencySpec.seeded(5, dist="exponential", mean=2.0).build()
        direct = SeededLatency(5, dist="exponential", mean=2.0)
        for attr in ("seed", "dist", "lo", "hi", "mean", "min_delay"):
            assert getattr(built, attr) == getattr(direct, attr)

    def test_specs_are_picklable(self):
        import pickle

        s = spec()
        assert pickle.loads(pickle.dumps(s)) == s

    def test_specs_are_hashable_and_frozen(self):
        s = spec()
        assert hash(s) == hash(spec())
        with pytest.raises(AttributeError):
            s.protocol = "anbkh"
