"""The runner's determinism contract: parallel, cached, and serial
executions of the same grid are ``==``-identical down to the rendered
report bytes."""

import pytest

from repro.paperfigs.comparison import (
    expand_grid,
    render_sweep,
    sweep_processes,
)
from repro.sweep import (
    LatencySpec,
    RunCache,
    RunSpec,
    SweepRunner,
    run_specs,
)
from repro.workloads.generators import WorkloadConfig

GRID = dict(n_values=(3, 4), ops_per_process=5, seeds=(0, 1),
            protocols=("optp", "anbkh"))


def small_specs(n=3):
    return [
        RunSpec(
            protocol=proto,
            n_processes=n,
            config=WorkloadConfig(n_processes=n, ops_per_process=5,
                                  seed=seed),
            latency=LatencySpec.seeded(seed),
        )
        for seed in (0, 1)
        for proto in ("optp", "anbkh")
    ]


class TestDifferential:
    def test_parallel_rows_byte_identical_to_serial(self):
        """The acceptance differential: --jobs 2 output equals the
        serial reference, rows and rendered text alike."""
        serial = sweep_processes(**GRID)
        parallel = sweep_processes(**GRID, runner=SweepRunner(jobs=2))
        assert parallel == serial
        assert render_sweep(parallel) == render_sweep(serial)

    def test_cached_rows_equal_fresh(self, tmp_path):
        runner = SweepRunner(cache=RunCache(tmp_path))
        fresh = sweep_processes(**GRID, runner=runner)
        warm = sweep_processes(**GRID, runner=runner)
        assert warm == fresh
        assert render_sweep(warm) == render_sweep(fresh)
        runs = len(expand_grid(
            GRID["n_values"],
            make_config=lambda n, s: WorkloadConfig(n_processes=int(n)),
            n_for=int, seeds=GRID["seeds"], protocols=GRID["protocols"],
        ))
        assert runner.stats.cache_misses == runs
        assert runner.stats.cache_hits == runs

    def test_parallel_cached_and_serial_metrics_identical(self, tmp_path):
        specs = small_specs()
        serial = run_specs(specs)
        parallel = run_specs(specs, jobs=2)
        cache = RunCache(tmp_path)
        cold = run_specs(specs, cache=cache)
        warm = run_specs(specs, cache=cache)
        assert serial == parallel == cold == warm

    def test_results_in_spec_order(self):
        specs = small_specs()
        metrics = run_specs(specs)
        assert [m.protocol for m in metrics] == [s.protocol for s in specs]
        assert [m.n_processes for m in metrics] == [
            s.n_processes for s in specs
        ]


class TestStats:
    def test_counts_accumulate(self, tmp_path):
        runner = SweepRunner(cache=RunCache(tmp_path))
        specs = small_specs()
        runner.run(specs)
        runner.run(specs)
        stats = runner.stats.to_dict()
        assert stats["runs"] == 2 * len(specs)
        assert stats["cache_misses"] == len(specs)
        assert stats["cache_hits"] == len(specs)
        assert stats["sim_seconds"] > 0
        assert stats["cache_discarded"] == 0

    def test_no_cache_counts_all_misses(self):
        runner = SweepRunner()
        runner.run(small_specs())
        assert runner.stats.cache_hits == 0
        assert runner.stats.cache_misses == 0  # no cache consulted
        assert runner.stats.runs == len(small_specs())


class TestObservability:
    def test_counters_recorded_when_enabled(self, tmp_path):
        from repro.obs import Obs

        obs = Obs.recording()
        runner = SweepRunner(cache=RunCache(tmp_path), obs=obs)
        specs = small_specs()
        runner.run(specs)
        runner.run(specs)
        reg = obs.registry
        assert reg.total("sweep.runs") == 2 * len(specs)
        assert reg.total("sweep.cache_hits") == len(specs)
        assert reg.total("sweep.cache_misses") == len(specs)
        assert reg.value("sweep.jobs") == 1

    def test_null_obs_records_nothing(self):
        runner = SweepRunner()
        runner.run(small_specs()[:1])  # must not raise via NULL_OBS


class TestVerification:
    def test_unknown_protocol_raises(self):
        from repro.sweep import run_spec

        bad = RunSpec(
            protocol="no-such-protocol",
            n_processes=3,
            config=WorkloadConfig(n_processes=3, ops_per_process=2),
        )
        with pytest.raises(Exception):
            run_spec(bad)

    def test_verify_false_skips_checker(self):
        from repro.sweep import run_spec

        spec = RunSpec(
            protocol="optp",
            n_processes=3,
            config=WorkloadConfig(n_processes=3, ops_per_process=3),
            verify=False,
        )
        metrics = run_spec(spec)
        assert metrics.protocol == "optp"
