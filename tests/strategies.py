"""Shared hypothesis strategies for the property-test suites.

One vocabulary of generated inputs, used by the theory-layer tests
(``tests/model``), the simulator/serialization tests (``tests/sim``),
the scheduler differential (``tests/integration``), the protocol
conformance suite (``tests/protocols``), and the model-checker tests
(``tests/mck``):

- :func:`histories` -- arbitrary (possibly *inconsistent*) histories,
  for driving legality/causal-order code with adversarial inputs;
- :func:`workload_configs` -- random :class:`WorkloadConfig` shapes for
  full simulated runs;
- :data:`latency_kinds` / :func:`make_latency` / :data:`latency_seeds`
  -- the latency regimes runs are exercised under;
- :func:`mck_workloads` -- small per-process operation scripts sized
  for the exhaustive model checker (a handful of ops, 2-3 processes:
  the checker explores *every* interleaving, so size is the budget).
"""

from hypothesis import strategies as st

from repro.model.history import HistoryBuilder
from repro.sim import ConstantLatency, SeededLatency
from repro.workloads import WorkloadConfig
from repro.workloads.ops import ReadOp, WriteOp


@st.composite
def histories(draw, max_processes=4, max_ops=12, max_vars=3):
    """A random history: reads read-from any *earlier-generated* write
    on the same variable (or BOTTOM), so ->co stays acyclic but
    legality is arbitrary."""
    n = draw(st.integers(min_value=1, max_value=max_processes))
    n_ops = draw(st.integers(min_value=0, max_value=max_ops))
    b = HistoryBuilder(n)
    wids_by_var = {}
    for _ in range(n_ops):
        p = draw(st.integers(min_value=0, max_value=n - 1))
        var = f"x{draw(st.integers(min_value=0, max_value=max_vars - 1))}"
        if draw(st.booleans()):
            wid = b.write(p, var)
            wids_by_var.setdefault(var, []).append(wid)
        else:
            pool = wids_by_var.get(var, [])
            choice = draw(st.integers(min_value=-1, max_value=len(pool) - 1))
            b.read(p, var, None if choice < 0 else pool[choice])
    return b.build()


def workload_configs(min_processes=2, max_processes=6, max_ops=15,
                     max_vars=5, min_write_fraction=0.2):
    """Random workload shapes for full simulated runs."""
    return st.builds(
        WorkloadConfig,
        n_processes=st.integers(min_value=min_processes,
                                max_value=max_processes),
        ops_per_process=st.integers(min_value=2, max_value=max_ops),
        n_variables=st.integers(min_value=1, max_value=max_vars),
        write_fraction=st.floats(min_value=min_write_fraction,
                                 max_value=1.0),
        zipf_s=st.floats(min_value=0.0, max_value=2.0),
        seed=st.integers(min_value=0, max_value=10_000),
    )


latency_seeds = st.integers(min_value=0, max_value=10_000)
latency_kinds = st.sampled_from(["constant", "uniform", "exponential"])


def make_latency(kind: str, seed: int):
    """A latency model of the given regime (seeded where applicable)."""
    if kind == "constant":
        return ConstantLatency(1.0)
    if kind == "uniform":
        return SeededLatency(seed, dist="uniform", lo=0.2, hi=4.0)
    return SeededLatency(seed, dist="exponential", mean=1.5)


@st.composite
def mck_workloads(draw, max_processes=3, max_ops_per_process=3,
                  max_vars=2):
    """A small random checker workload (per-process operation scripts).

    Sized for exhaustive exploration: the interleaving count grows
    factorially in total ops, so the defaults keep DFS in the
    10^2..10^4 state range.  Values are unique per write so read-from
    edges stay unambiguous.
    """
    from repro.mck.workloads import MckWorkload

    n = draw(st.integers(min_value=2, max_value=max_processes))
    counter = 0
    scripts = []
    for p in range(n):
        k = draw(st.integers(min_value=0, max_value=max_ops_per_process))
        ops = []
        for _ in range(k):
            var = f"x{draw(st.integers(min_value=0, max_value=max_vars - 1))}"
            if draw(st.booleans()):
                ops.append(WriteOp(var, f"v{counter}"))
                counter += 1
            else:
                ops.append(ReadOp(var))
        scripts.append(tuple(ops))
    return MckWorkload(name="hyp", scripts=tuple(scripts))
