"""Wire-codec round-trip tests.

Two layers: hypothesis property tests over the tagged value universe,
and an end-to-end capture -- every message every registry protocol
actually emits on a random workload must round-trip byte-for-byte
through the codec (this is what makes ``sim.network.estimate_size``'s
exact sizing sound for all protocols).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.network as network_mod
from repro.core.base import ControlMessage, UpdateMessage
from repro.model.operations import WriteId
from repro.protocols import PROTOCOLS
from repro.serve.codec import (
    MAX_FRAME,
    CodecError,
    InternDecoder,
    InternEncoder,
    VarReader,
    VarWriter,
    decode_message,
    decode_message_from,
    decode_request,
    decode_response,
    decode_value,
    encode_message,
    encode_message_into,
    encode_request,
    encode_response,
    encode_value,
    encoded_size,
    frame,
)
from repro.sim import SeededLatency, run_schedule
from repro.workloads import WorkloadConfig, random_schedule

# -- value universe ----------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
    st.builds(WriteId, st.integers(0, 100), st.integers(1, 2**31)),
)

values = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=5),
        st.lists(inner, max_size=5).map(tuple),
        st.dictionaries(st.text(max_size=10), inner, max_size=5),
    ),
    max_leaves=20,
)


def roundtrip_value(value):
    w = VarWriter()
    encode_value(w, value)
    r = VarReader(w.getvalue())
    out = decode_value(r)
    assert r.done()
    return out


class TestValueRoundtrip:
    @given(values)
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_identity(self, value):
        assert roundtrip_value(value) == value

    @given(values)
    @settings(max_examples=100, deadline=None)
    def test_types_preserved(self, value):
        # bool vs int, tuple vs list, bytes vs str must not collapse
        out = roundtrip_value(value)
        assert type(out) is type(value)

    def test_vector_fast_path(self):
        for vec in [(0,), (1, 2, 3), (2**40, 0, 5)]:
            assert roundtrip_value(vec) == vec

    def test_bottom_sentinel(self):
        from repro.core.base import BOTTOM

        assert roundtrip_value(BOTTOM) is BOTTOM

    def test_unencodable_rejected(self):
        w = VarWriter()
        with pytest.raises(CodecError):
            encode_value(w, object())

    @given(st.binary(max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_garbage_never_crashes(self, blob):
        # decoding attacker-controlled bytes must raise CodecError (or
        # succeed), never IndexError/KeyError/MemoryError
        try:
            decode_value(VarReader(blob))
        except CodecError:
            pass


# -- interning ----------------------------------------------------------------

class TestInterning:
    def test_second_reference_is_smaller(self):
        enc = InternEncoder()
        w1 = VarWriter()
        enc.write(w1, "some-long-variable-name")
        w2 = VarWriter()
        enc.write(w2, "some-long-variable-name")
        assert len(w2.getvalue()) < len(w1.getvalue())
        dec = InternDecoder()
        assert dec.read(VarReader(w1.getvalue())) == "some-long-variable-name"
        assert dec.read(VarReader(w2.getvalue())) == "some-long-variable-name"

    def test_stateless_encoding_is_canonical(self):
        m = UpdateMessage(sender=0, wid=WriteId(0, 1), variable="x",
                          value=1, payload={"write_co": (1, 0)})
        assert encode_message(m) == encode_message(m)
        assert encoded_size(m) == len(encode_message(m))


# -- messages from every registry protocol ------------------------------------

def capture_protocol_messages(proto, monkeypatch):
    """Run a real workload and capture every message the protocol
    put on the (simulated) wire."""
    captured = []
    orig = network_mod.estimate_size

    def spy(message):
        captured.append(message)
        return orig(message)

    monkeypatch.setattr(network_mod, "estimate_size", spy)
    cfg = WorkloadConfig(n_processes=3, ops_per_process=12,
                        n_variables=3, write_fraction=0.6, seed=5)
    run_schedule(proto, 3, random_schedule(cfg),
                 latency=SeededLatency(seed=7))
    return captured


class TestProtocolMessageRoundtrip:
    @pytest.mark.parametrize("proto", sorted(PROTOCOLS))
    def test_all_emitted_messages_roundtrip(self, proto, monkeypatch):
        captured = capture_protocol_messages(proto, monkeypatch)
        assert captured, f"{proto} sent no messages?"
        for message in captured:
            blob = encode_message(message)
            back = decode_message(blob)
            assert back == message  # frozen dataclass field equality
            assert type(back) is type(message)
            assert encoded_size(message) == len(blob)

    @pytest.mark.parametrize("proto", sorted(PROTOCOLS))
    def test_streamed_interning_roundtrip(self, proto, monkeypatch):
        """Per-connection interned stream (what peers actually ship)."""
        captured = capture_protocol_messages(proto, monkeypatch)
        w = VarWriter()
        enc = InternEncoder()
        for message in captured:
            encode_message_into(w, message, enc)
        r = VarReader(w.getvalue())
        dec = InternDecoder()
        back = [decode_message_from(r, dec) for _ in captured]
        assert r.done()
        assert back == captured


# -- request / response planes ------------------------------------------------

class TestRequestResponse:
    def test_request_roundtrip(self):
        from repro.serve.codec import OP_READ, OP_WRITE

        session = (3, 0, 7)
        ops = [(OP_WRITE, "x", "hello"), (OP_READ, "y", None),
               (OP_WRITE, "z", (1, 2))]
        back_session, back_ops = decode_request(
            encode_request(session, ops))
        assert back_session == session
        assert back_ops == ops

    def test_response_roundtrip(self):
        from repro.serve.codec import OP_READ, OP_WRITE

        progress = (5, 2, 9)
        results = [(OP_WRITE, 6), (OP_READ, "v"), (OP_READ, None)]
        back_progress, back_results = decode_response(
            encode_response(progress, results))
        assert back_progress == progress
        assert back_results == results


# -- framing ------------------------------------------------------------------

class TestFraming:
    def test_frame_layout(self):
        body = b"hello"
        blob = frame(body)
        assert blob[:4] == len(body).to_bytes(4, "big")
        assert blob[4:] == body

    def test_oversize_frame_rejected(self):
        with pytest.raises(CodecError):
            frame(b"x" * (MAX_FRAME + 1))

    def test_truncated_reader_raises(self):
        r = VarReader(b"\x05")
        with pytest.raises(CodecError):
            r.take(4)

    def test_control_payload_int_keys_ok(self):
        # generic dict encoding covers non-string keys on the control
        # plane (update payload keys are the strict ones)
        m = ControlMessage(sender=0, kind="k", payload={1: (2, 3)})
        assert decode_message(encode_message(m)) == m

    def test_update_payload_keys_must_be_strings(self):
        m = UpdateMessage(sender=0, wid=WriteId(0, 1), variable="x",
                          value=1, payload={1: 2})
        w = VarWriter()
        with pytest.raises(CodecError):
            encode_message_into(w, m, InternEncoder())
        assert encoded_size(m) is None  # -> heuristic fallback
