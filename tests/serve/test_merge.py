"""Causally gated k-way merge tests.

The merge turns per-node live logs back into one global trace the
checkers accept; the interesting cases are clock skew (receipt stamped
before its send) and genuinely inconsistent logs.
"""

import pytest

from repro.model.operations import WriteId
from repro.serve.merge import (
    MergeError,
    dump_node_log,
    load_node_log,
    merge_node_logs,
)
from repro.sim.trace import EventKind, Trace


def node_trace(n, events):
    """Build a per-node trace from (time, process, kind, wid, var, val)."""
    trace = Trace(n)
    for time, process, kind, wid, var, val, read_from in events:
        trace.record(time, process, kind, wid=wid, variable=var,
                     value=val, read_from=read_from)
    return trace


def logs_roundtrip(traces, protocol="optp"):
    return [
        load_node_log(dump_node_log(trace, p, protocol))
        for p, trace in enumerate(traces)
    ]


W = EventKind.WRITE
S = EventKind.SEND
R = EventKind.RECEIPT
A = EventKind.APPLY
RET = EventKind.RETURN


class TestRoundtrip:
    def test_dump_load_preserves_events(self):
        w1 = WriteId(0, 1)
        t0 = node_trace(2, [
            (1.0, 0, W, w1, "x", "a", None),
            (1.0, 0, S, w1, "x", "a", None),
            (3.0, 0, RET, None, "x", "a", w1),
        ])
        log = load_node_log(dump_node_log(t0, 0, "optp"))
        assert log.process == 0
        assert log.n_processes == 2
        assert log.protocol == "optp"
        kinds = [ev.kind for ev, _ in log.events]
        assert kinds == [W, S, RET]
        ev0, ra0 = log.events[0]
        assert ev0.wid == w1 and ev0.value == "a"
        assert ra0 is True  # WRITE doubled as the local apply

    def test_bad_header_rejected(self):
        with pytest.raises(MergeError):
            load_node_log('{"kind": "nope", "version": 1}\n')
        with pytest.raises(MergeError):
            load_node_log("")


class TestMerge:
    def test_real_time_ordered_logs_merge_in_time_order(self):
        w1 = WriteId(0, 1)
        t0 = node_trace(2, [
            (1.0, 0, W, w1, "x", "a", None),
            (1.0, 0, S, w1, "x", "a", None),
        ])
        t1 = node_trace(2, [
            (2.0, 1, R, w1, "x", "a", None),
            (2.0, 1, A, w1, "x", "a", None),
            (3.0, 1, RET, None, "x", "a", w1),
        ])
        merged = merge_node_logs(logs_roundtrip([t0, t1]))
        assert [ev.kind for ev in merged.events] == [W, S, R, A, RET]
        assert merged.apply_event(1, w1) is not None

    def test_clock_skew_receipt_gated_behind_write(self):
        """p1 stamps the receipt *before* p0's write (skewed clock);
        the merge must still emit the WRITE first."""
        w1 = WriteId(0, 1)
        t0 = node_trace(2, [
            (5.0, 0, W, w1, "x", "a", None),
            (5.0, 0, S, w1, "x", "a", None),
        ])
        t1 = node_trace(2, [
            (1.0, 1, R, w1, "x", "a", None),
            (1.1, 1, A, w1, "x", "a", None),
        ])
        merged = merge_node_logs(logs_roundtrip([t0, t1]))
        kinds = [(ev.process, ev.kind) for ev in merged.events]
        assert kinds.index((0, W)) < kinds.index((1, R))
        assert kinds.index((1, R)) < kinds.index((1, A))

    def test_own_writes_never_gated(self):
        w1 = WriteId(1, 1)
        t1 = node_trace(2, [
            (1.0, 1, W, w1, "x", "a", None),
            (1.0, 1, S, w1, "x", "a", None),
        ])
        t0 = node_trace(2, [
            (0.5, 0, R, w1, "x", "a", None),
            (0.6, 0, A, w1, "x", "a", None),
        ])
        merged = merge_node_logs(logs_roundtrip([t0, t1]))
        assert len(merged.events) == 4

    def test_missing_write_raises(self):
        """A receipt whose write appears in no log = corrupt capture."""
        ghost = WriteId(0, 9)
        t0 = node_trace(2, [])
        t1 = node_trace(2, [(1.0, 1, R, ghost, "x", "a", None)])
        with pytest.raises(MergeError, match="stuck heads"):
            merge_node_logs(logs_roundtrip([t0, t1]))

    def test_mixed_protocols_rejected(self):
        t0 = node_trace(2, [])
        t1 = node_trace(2, [])
        logs = [
            load_node_log(dump_node_log(t0, 0, "optp")),
            load_node_log(dump_node_log(t1, 1, "anbkh")),
        ]
        with pytest.raises(MergeError, match="mixed protocols"):
            merge_node_logs(logs)

    def test_duplicate_process_rejected(self):
        t0 = node_trace(2, [])
        logs = [
            load_node_log(dump_node_log(t0, 0, "optp")),
            load_node_log(dump_node_log(t0, 0, "optp")),
        ]
        with pytest.raises(MergeError, match="two logs"):
            merge_node_logs(logs)
