"""Serve-layer crash drill: SIGKILL a replica mid-load, restart it,
and require the recovered deployment to pass every conformance oracle.

This is the end-to-end acceptance test for the durability path: the
victim's WAL + snapshot must rebuild its exact pre-crash state, the
WELCOME handshake must pull the missed update suffix from its peers,
and the merged trace -- spanning the outage -- must replay through the
causal-consistency checker with exact-zero violations.  Rate-limited
like the other serve tests (the conformance checker's vectorized
legality pass is quadratic in trace length).
"""

import pytest

from repro.serve.harness import ServedCluster, serve_chaos
from repro.serve.loadgen import LoadgenConfig

CHAOS_LOAD = LoadgenConfig(batch=8, pipeline=2, keys=8, rate=300.0)


class TestServeChaos:
    def test_kill_and_recover_with_conformance(self, tmp_path):
        report = serve_chaos(
            "optp", group_size=3, rundir=tmp_path,
            duration=3.0, kill_after=1.0, down_time=0.4, victim=1,
            workers=1, record=True, verify=True,
            loadgen=CHAOS_LOAD,
        )
        # the victim really died and really recovered from its rundir
        assert report["recovered"] == 1
        assert report["recovery_us"] > 0
        assert report["wal_records"] > 0
        # load rode through the outage (reconnect lanes)
        assert report["load"]["ops"] > 0
        # and the recorded history is causally consistent, exact-zero
        conf = report["conformance"]
        assert conf["ok"], conf
        (group_report,) = conf["groups"]
        assert group_report["checker_problems"] == []
        assert group_report["invariant_findings"] == []
        # durable artifacts landed where recovery will look for them
        assert (tmp_path / "wal" / "node-g0n1.wal").exists()

    def test_restart_requires_dead_process(self, tmp_path):
        cluster = ServedCluster.start(
            "optp", group_size=2, shards=1, rundir=tmp_path,
            record=False, wal_dir=tmp_path / "wal",
        )
        try:
            with pytest.raises(RuntimeError, match="still running"):
                cluster.restart_node(0, 0)
        finally:
            cluster.kill()


class TestInProcessRecovery:
    """Deterministic single-replica recovery, no subprocesses: drive a
    durable ReplicaServer, snapshot mid-stream, rebuild from the same
    wal_dir, and require byte-identical protocol state."""

    def _server(self, tmp_path, **kwargs):
        from repro.serve.server import ReplicaServer
        from repro.serve.shard import ClusterSpec

        spec = ClusterSpec.local_uds(tmp_path, "optp",
                                     n_shards=1, group_size=1)
        return ReplicaServer(spec, 0, 0, rundir=tmp_path, record=False,
                             wal_dir=tmp_path / "wal", **kwargs)

    def test_snapshot_plus_tail_replay(self, tmp_path):
        first = self._server(tmp_path, snapshot_every=4)
        for i in range(11):
            body = first._dur.encode_write_record(
                first._now(), f"k{i % 3}", f"v{i}")
            first._wal_append(body)
            first.node.do_write(f"k{i % 3}", f"v{i}")
            first._maybe_snapshot()
        first._wal.sync()
        first._wal.close()
        assert first.stats["snapshots"] == 2
        before = first.node.protocol.debug_state()

        second = self._server(tmp_path, snapshot_every=4)
        assert second.stats["recovered"] == 1
        assert second.stats["recovery_us"] > 0
        assert second.node.protocol.debug_state() == before
        assert second._sent == first._sent
        # recovery re-derives own-progress from the replayed protocol
        # (the test drove the node directly, bypassing the client path
        # that normally keeps ``applied`` current)
        assert second.applied[0] == second.node.protocol.writes_issued == 11

    def test_fresh_wal_dir_means_no_recovery(self, tmp_path):
        server = self._server(tmp_path)
        assert server.stats["recovered"] == 0
        assert (tmp_path / "wal").is_dir()

    def test_status_reports_wal_counters(self, tmp_path):
        server = self._server(tmp_path)
        server._wal_append(
            server._dur.encode_read_record(server._now(), "x"))
        server._wal.sync()
        stats = server._status()["stats"]
        assert stats["wal_records"] == 1
        assert stats["wal_fsyncs"] >= 1
        assert stats["wal_bytes"] > 0
