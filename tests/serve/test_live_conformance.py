"""Live run -> merged trace -> full oracle replay.

The tentpole's correctness claim: a trace recorded by real networked
replicas replays byte-for-byte through the same checkers that verify
simulator runs (causal legality, OptP safety/liveness/optimality, mck
invariants).
"""

import asyncio

import pytest

from repro.analysis import check_run
from repro.serve.client import AsyncSessionClient
from repro.serve.conformance import verify_live_trace
from repro.serve.merge import load_node_log, merge_node_logs
from repro.serve.server import SERVABLE_PROTOCOLS

from .test_session import Group


async def _drive(group, ops=40, keys=4):
    """A deterministic little workload with cross-replica sessions."""
    clients = [
        AsyncSessionClient(group.spec, replica=i % group.spec.group_size)
        for i in range(3)
    ]
    for i in range(ops):
        client = clients[i % len(clients)]
        key = f"k{i % keys}"
        if i % 3 == 0:
            await client.put(key, f"val{i}")
        else:
            await client.get(key)
    for client in clients:
        await client.close()


def _merged_trace_after_run(tmp_path, protocol, quiesce_rounds=200):
    async def go():
        async with Group(tmp_path, protocol=protocol, record=True) as group:
            await _drive(group)
            # settle: wait until every replica applied every write
            for _ in range(quiesce_rounds):
                applied = [tuple(s.applied) for s in group.servers]
                target = tuple(applied[j][j] for j in range(len(applied)))
                if all(a == target for a in applied) and all(
                        s.node.buffered_count == 0 for s in group.servers):
                    break
                await asyncio.sleep(0.01)
            else:
                raise AssertionError(f"group never quiesced: {applied}")
            await group.stop_gracefully()

    asyncio.run(go())
    logs = [
        load_node_log((tmp_path / f"node-g0n{i}.log.jsonl").read_text())
        for i in range(3)
    ]
    return merge_node_logs(logs)


@pytest.mark.parametrize("protocol", sorted(SERVABLE_PROTOCOLS))
class TestLiveConformance:
    def test_live_trace_passes_all_oracles(self, tmp_path, protocol):
        trace = _merged_trace_after_run(tmp_path, protocol)
        report = verify_live_trace(
            trace,
            protocol_name=protocol,
            expect_optimal=protocol == "optp",
            quiescent=True,
        )
        assert report["checker_problems"] == []
        assert report["invariant_findings"] == []
        assert report["ok"], report
        assert report["writes"] > 0 and report["reads"] > 0

    def test_live_trace_jsonl_roundtrip(self, tmp_path, protocol):
        """The merged trace serializes and replays byte-identically
        through the existing JSONL pipeline (what `repro-dsm replay`
        consumes)."""
        from repro.sim.serialize import trace_from_jsonl, trace_to_jsonl

        trace = _merged_trace_after_run(tmp_path, protocol)
        text = trace_to_jsonl(trace)
        back = trace_from_jsonl(text)
        assert trace_to_jsonl(back) == text
        assert len(back.events) == len(trace.events)


class TestVerifyLiveTrace:
    def test_checker_agrees_with_direct_check_run(self, tmp_path):
        """verify_live_trace's RunResult scaffolding must not change
        the checker verdict vs. calling check_run by hand."""
        trace = _merged_trace_after_run(tmp_path, "optp")
        from repro.sim.result import RunResult

        result = RunResult(
            protocol_name="optp",
            n_processes=trace.n_processes,
            trace=trace,
            duration=trace.events[-1].time if trace.events else 0.0,
            messages_sent=0,
            bytes_estimate=0,
            stores=[{} for _ in range(trace.n_processes)],
            protocol_stats=[{} for _ in range(trace.n_processes)],
        )
        direct = check_run(result)
        assert bool(direct.legality)
        assert not direct.safety_violations
