"""ClusterSpec / sharding tests."""

import pytest

from repro.serve.shard import ClusterSpec, parse_endpoint, shard_of


class TestShardOf:
    def test_deterministic_and_hashseed_independent(self):
        # crc32-based: these values must never change across runs or
        # PYTHONHASHSEED settings (clients and servers must agree)
        assert shard_of("x", 1) == 0
        assert [shard_of(f"k{i}", 4) for i in range(8)] == [
            shard_of(f"k{i}", 4) for i in range(8)
        ]

    def test_spreads_keys(self):
        groups = {shard_of(f"key-{i}", 4) for i in range(64)}
        assert groups == {0, 1, 2, 3}

    def test_non_string_variables(self):
        assert 0 <= shard_of(42, 3) < 3
        assert shard_of(42, 3) == shard_of(42, 3)


class TestParseEndpoint:
    def test_unix(self):
        assert parse_endpoint("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")

    def test_tcp(self):
        assert parse_endpoint("tcp:127.0.0.1:7400") == (
            "tcp", ("127.0.0.1", 7400))

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_endpoint("http://nope")


class TestClusterSpec:
    def test_json_roundtrip(self, tmp_path):
        spec = ClusterSpec.local_uds(tmp_path, "optp", 2, 3)
        back = ClusterSpec.from_json(spec.to_json())
        assert back == spec
        path = tmp_path / "cluster.json"
        spec.save(path)
        assert ClusterSpec.load(path) == spec

    def test_shape_properties(self, tmp_path):
        spec = ClusterSpec.local_uds(tmp_path, "optp", 2, 3)
        assert spec.n_shards == 2
        assert spec.group_size == 3
        assert spec.total_nodes == 6

    def test_group_for_uses_shard_of(self, tmp_path):
        spec = ClusterSpec.local_uds(tmp_path, "optp", 2, 3)
        for key in ["a", "b", "c", "d"]:
            assert spec.group_for(key) == shard_of(key, 2)

    def test_unequal_groups_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec("optp", (("unix:/a", "unix:/b"), ("unix:/c",)))

    def test_tcp_ports_distinct(self):
        spec = ClusterSpec.local_tcp("optp", 2, 3, port_base=7500)
        endpoints = [spec.endpoint(g, i) for g in range(2) for i in range(3)]
        assert len(set(endpoints)) == 6
