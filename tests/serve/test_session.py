"""Session-guarantee and fault tests against in-process replica groups.

All servers share one event loop (no subprocess spawning), which keeps
these tests fast while exercising the full wire path: real UDS
sockets, real frames, real peer broadcast links.
"""

import asyncio

import pytest

from repro.core.base import BOTTOM
from repro.serve.client import AsyncSessionClient
from repro.serve.server import ReplicaServer, STOP_SHUTDOWN
from repro.serve.shard import ClusterSpec


class Group:
    """N in-process replica servers on the current loop."""

    def __init__(self, tmp_path, protocol="optp", n=3, shards=1,
                 record=False):
        self.spec = ClusterSpec.local_uds(tmp_path, protocol, shards, n)
        self.servers = [
            ReplicaServer(self.spec, g, i, record=record, rundir=tmp_path)
            for g in range(shards)
            for i in range(n)
        ]
        self.tasks = []

    async def __aenter__(self):
        # run() gates its ready signal on peer links; poll each
        # server's link count instead of touching real ready files.
        self.tasks = [
            asyncio.ensure_future(server.run()) for server in self.servers
        ]
        for server in self.servers:
            while len(server._links) < server.n - 1 or server._server is None:
                boom = [t for t in self.tasks if t.done() and t.exception()]
                if boom:
                    raise boom[0].exception()
                await asyncio.sleep(0.005)
        return self

    async def __aexit__(self, *exc):
        for server in self.servers:
            server._stop.set()
        await asyncio.gather(*self.tasks, return_exceptions=True)

    async def stop_gracefully(self):
        """Admin-plane shutdown (flush + dump) for recorded runs."""
        from repro.serve.harness import _admin_call

        for g in range(self.spec.n_shards):
            for i in range(self.spec.group_size):
                await _admin_call(self.spec.endpoint(g, i), STOP_SHUTDOWN)
        await asyncio.gather(*self.tasks, return_exceptions=True)


def run(coro):
    return asyncio.run(coro)


class TestSessionGuarantees:
    def test_read_your_writes_same_replica(self, tmp_path):
        async def go():
            async with Group(tmp_path) as group:
                client = AsyncSessionClient(group.spec)
                seq = await client.put("x", "hello")
                assert seq == 1
                assert await client.get("x") == "hello"
                await client.close()

        run(go())

    def test_read_your_writes_across_replicas(self, tmp_path):
        """A session that writes via replica 0 and reads via replica 1
        must see its own write (the read wa its on the session vector)."""

        async def go():
            async with Group(tmp_path) as group:
                writer = AsyncSessionClient(group.spec, replica=0)
                for i in range(5):
                    await writer.put("x", f"v{i}")
                # hand the session vector to a client on another replica
                reader = AsyncSessionClient(group.spec, replica=1)
                reader.sessions = [list(s) for s in writer.sessions]
                assert await reader.get("x") == "v4"
                await writer.close()
                await reader.close()

        run(go())

    def test_monotonic_reads_across_replicas(self, tmp_path):
        """Once a session has seen a state, moving replicas can never
        show it an older one."""

        async def go():
            async with Group(tmp_path) as group:
                writer = AsyncSessionClient(group.spec, replica=0)
                await writer.put("x", "new")
                reader = AsyncSessionClient(group.spec, replica=2)
                reader.sessions = [list(s) for s in writer.sessions]
                seen = await reader.get("x")
                assert seen == "new"
                # switch replica mid-session: still >= what it saw
                reader2 = AsyncSessionClient(group.spec, replica=1)
                reader2.sessions = [list(s) for s in reader.sessions]
                assert await reader2.get("x") == "new"
                for c in (writer, reader, reader2):
                    await c.close()

        run(go())

    def test_unwritten_variable_reads_bottom(self, tmp_path):
        async def go():
            async with Group(tmp_path) as group:
                client = AsyncSessionClient(group.spec)
                assert await client.get("never-written") is BOTTOM
                await client.close()

        run(go())

    def test_sharded_puts_route_by_key(self, tmp_path):
        async def go():
            async with Group(tmp_path, n=2, shards=2) as group:
                client = AsyncSessionClient(group.spec)
                keys = [f"k{i}" for i in range(8)]
                for key in keys:
                    await client.put(key, key.upper())
                for key in keys:
                    assert await client.get(key) == key.upper()
                # both shards must have taken writes
                writes = [s.stats["writes"] for s in group.servers]
                assert sum(1 for w in writes if w) >= 2
                await client.close()

        run(go())


class TestClientDeath:
    def test_server_survives_client_abort_mid_session(self, tmp_path):
        """Kill a client with pipelined requests in flight: the server
        must survive, and a new session must still be monotonic."""

        async def go():
            async with Group(tmp_path) as group:
                doomed = AsyncSessionClient(group.spec)
                for i in range(10):
                    await doomed.put("x", f"v{i}")
                # leave requests in flight, then yank the transport
                conn = await doomed._conn(0)
                pending = [
                    asyncio.ensure_future(
                        conn.request(tuple(doomed.sessions[0]),
                                     [(1, "x", f"dead{i}")]))
                    for i in range(4)
                ]
                await asyncio.sleep(0)  # let frames hit the socket
                doomed.abort()
                results = await asyncio.gather(*pending,
                                               return_exceptions=True)
                assert any(isinstance(r, Exception) for r in results)

                # the replica group is still fully alive; use a fresh
                # key -- the doomed session's writes to "x" are
                # *concurrent* with this session, so x's final value
                # is legitimately either's
                fresh = AsyncSessionClient(group.spec, replica=1)
                seq = await fresh.put("y", "after-crash")
                assert seq >= 1
                assert await fresh.get("y") == "after-crash"
                x_now = await fresh.get("x")
                valid = {f"v{i}" for i in range(10)} | {
                    f"dead{i}" for i in range(4)}
                assert x_now in valid
                # session vector only ever grows (monotonic sessions)
                before = [list(s) for s in fresh.sessions]
                await fresh.get("y")
                after = fresh.sessions
                for g in range(len(before)):
                    for j in range(len(before[g])):
                        assert after[g][j] >= before[g][j]
                await fresh.close()
                # every server task still running
                assert all(not t.done() for t in group.tasks)
                aborts = sum(s.stats["client_aborts"]
                             for s in group.servers)
                assert aborts >= 1

        run(go())

    def test_concurrent_sessions_isolated(self, tmp_path):
        """One session's abort must not fail another's in-flight ops."""

        async def go():
            async with Group(tmp_path) as group:
                a = AsyncSessionClient(group.spec, replica=0)
                b = AsyncSessionClient(group.spec, replica=0)
                await a.put("x", 1)
                await b.put("y", 2)
                a.abort()
                assert await b.get("y") == 2
                await b.close()

        run(go())
