"""Multi-process deployment harness: one real end-to-end cycle.

This is the same path CI's serve-smoke job and the serve benchmark
drive: spawn replica processes, load, quiesce, two-phase shutdown,
merge the logs, replay the oracles.  Kept short (rate-limited,
sub-second) because it boots real OS processes.
"""

import json

import pytest

from repro.serve.harness import serve_and_load
from repro.serve.loadgen import LoadgenConfig, summarize_workers


class TestServeAndLoad:
    def test_full_cycle_with_conformance(self, tmp_path):
        report = serve_and_load(
            "optp", group_size=3, shards=1, rundir=tmp_path,
            duration=0.8, workers=1, record=True, verify=True,
            loadgen=LoadgenConfig(batch=8, pipeline=2, keys=8, rate=300.0),
        )
        load = report["load"]
        assert load["ops"] > 0
        assert load["ops_per_sec"] > 0
        assert load["read_p99_ms"] is not None
        conf = report["conformance"]
        assert conf["ok"], conf
        (group_report,) = conf["groups"]
        assert group_report["checker_problems"] == []
        assert group_report["invariant_findings"] == []
        # node logs + merged trace + stats landed in the rundir
        assert (tmp_path / "cluster.json").exists()
        assert (tmp_path / "trace-g0.jsonl").exists()
        for i in range(3):
            assert (tmp_path / f"node-g0n{i}.log.jsonl").exists()
            stats = json.loads(
                (tmp_path / f"node-g0n{i}.stats.json").read_text())
            assert "stats" in stats and "applied" in stats

    def test_unservable_protocol_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="serv"):
            serve_and_load("sequencer", rundir=tmp_path, duration=0.1)


class TestSummarizeWorkers:
    def test_merges_and_feeds_obs_registry(self):
        from repro.obs.metrics import MetricsRegistry

        results = [
            {"worker": 0, "ops": 10, "batches": 2, "elapsed": 1.0,
             "reads": 8, "writes": 2,
             "read_samples_ms": [1.0, 2.0], "write_samples_ms": [3.0]},
            {"worker": 1, "ops": 20, "batches": 4, "elapsed": 2.0,
             "reads": 16, "writes": 4,
             "read_samples_ms": [4.0], "write_samples_ms": [5.0, 6.0]},
        ]
        reg = MetricsRegistry()
        out = summarize_workers(results, registry=reg)
        assert out["ops"] == 30
        assert out["elapsed"] == 2.0
        assert out["ops_per_sec"] == 15.0
        assert out["read_p50_ms"] == 2.0
        assert out["write_p99_ms"] == 6.0
        # the same numbers are exportable through the obs registry
        assert reg.histogram("serve.read_latency_ms").count == 3
