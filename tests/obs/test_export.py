"""Perfetto/Chrome trace_event exporter: structure, attribution, flows,
and the validator the CI artifact check relies on."""

import json

import pytest

from repro.model.operations import WriteId
from repro.obs import (
    Obs,
    chrome_trace,
    summarize_metrics,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.export import TS_SCALE
from repro.sim.cluster import run_schedule
from repro.sim.latency import ScriptedLatency
from repro.workloads.ops import Schedule, ScheduledOp, WriteOp


@pytest.fixture(scope="module")
def observed_run():
    obs = Obs.recording()
    sched = Schedule.of([
        ScheduledOp(0.0, 0, WriteOp("x")),
        ScheduledOp(1.0, 0, WriteOp("y")),
    ])
    latency = ScriptedLatency(
        {(("update", WriteId(0, 1)), 1): 10.0}, default=1.0
    )
    return run_schedule("optp", 2, sched, latency=latency, obs=obs)


@pytest.fixture(scope="module")
def doc(observed_run):
    return chrome_trace(observed_run.trace, observed_run.spans,
                        protocol="optp")


class TestChromeTrace:
    def test_validates_clean(self, doc):
        assert validate_chrome_trace(doc) == []

    def test_json_round_trips(self, doc):
        assert json.loads(json.dumps(doc))["otherData"]["protocol"] == "optp"

    def test_track_metadata_per_process(self, doc):
        names = [e for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"]
        assert {e["args"]["name"] for e in names} == {"p0", "p1"}

    def test_buffer_slice_carries_blocking_dep(self, doc):
        [buf] = [e for e in doc["traceEvents"]
                 if e["ph"] == "X" and e.get("cat") == "buffer"]
        assert buf["name"] == "BUFFER w(p0#2)"
        assert buf["args"]["blocked_on"] == "p0#1"
        assert buf["tid"] == 1
        assert buf["ts"] == 2.0 * TS_SCALE
        assert buf["dur"] == pytest.approx(8.0 * TS_SCALE)

    def test_flow_connects_buffer_to_releasing_apply(self, doc):
        flows = [e for e in doc["traceEvents"] if e["ph"] in ("s", "f")]
        assert len(flows) == 2
        start = next(e for e in flows if e["ph"] == "s")
        finish = next(e for e in flows if e["ph"] == "f")
        assert start["id"] == finish["id"]
        assert finish["bp"] == "e"
        # the finish lands on w(p0#1)'s apply at p1 (t=10)
        assert finish["tid"] == 1
        assert finish["ts"] == 10.0 * TS_SCALE
        assert finish["ts"] >= start["ts"]

    def test_apply_timeline_rendered(self, doc):
        applies = [e["name"] for e in doc["traceEvents"]
                   if e.get("cat") == "apply"]
        assert "write w(p0#1)" in applies
        assert "apply w(p0#2)" in applies

    def test_spanless_export_still_valid(self, observed_run):
        bare = chrome_trace(observed_run.trace, None, protocol="optp")
        assert validate_chrome_trace(bare) == []
        assert not any(e.get("cat") == "buffer" for e in bare["traceEvents"])

    def test_write_chrome_trace_file(self, observed_run, tmp_path):
        path = tmp_path / "run.json"
        write_chrome_trace(path, observed_run.trace, observed_run.spans,
                           protocol="optp")
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) == ["document is not a JSON object"]

    def test_rejects_missing_events(self):
        assert validate_chrome_trace({}) == ["missing traceEvents array"]

    def test_rejects_bad_phase(self):
        doc = {"traceEvents": [
            {"ph": "Z", "pid": 0, "tid": 0, "ts": 0, "name": "x"},
        ]}
        assert any("bad phase" in p for p in validate_chrome_trace(doc))

    def test_rejects_negative_duration(self):
        doc = {"traceEvents": [
            {"ph": "X", "pid": 0, "tid": 0, "ts": 0, "dur": -1, "name": "x"},
        ]}
        assert any("dur" in p for p in validate_chrome_trace(doc))

    def test_rejects_unmatched_flow(self):
        doc = {"traceEvents": [
            {"ph": "s", "pid": 0, "tid": 0, "ts": 5, "name": "x", "id": 9},
        ]}
        assert any("unmatched" in p for p in validate_chrome_trace(doc))

    def test_rejects_flow_finish_before_start(self):
        doc = {"traceEvents": [
            {"ph": "s", "pid": 0, "tid": 0, "ts": 5, "name": "x", "id": 9},
            {"ph": "f", "pid": 0, "tid": 0, "ts": 1, "name": "x", "id": 9},
        ]}
        assert any("finish before start" in p
                   for p in validate_chrome_trace(doc))

    def test_rejects_non_int_pid(self):
        doc = {"traceEvents": [
            {"ph": "i", "pid": "a", "tid": 0, "ts": 0, "name": "x"},
        ]}
        assert any("pid" in p for p in validate_chrome_trace(doc))


class TestSummarizeMetrics:
    def test_renders_counters_gauges_histograms(self, observed_run):
        doc = {
            "protocol": "optp", "n_processes": 2, "duration": 11.0,
            "metrics": observed_run.metrics,
        }
        text = summarize_metrics(doc)
        assert "protocol: optp" in text
        assert "node.applies" in text
        assert "engine.queue_depth" in text
        assert "node.buffer_wait" in text
