"""Bench-compare sentinel tests.

The CI gate's contract: a regression injected into a current report
makes ``bench compare`` fail (exit 1), the committed baseline against
the committed reports passes, and ``--update`` refreshes recorded
values without touching rules.
"""

import json
from pathlib import Path

import pytest

from repro.obs import compare_benchmarks, load_baseline, update_baseline
from repro.obs.benchcmp import BASELINE_VERSION, DEFAULT_BASELINE

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def write_json(path, doc):
    path.write_text(json.dumps(doc, indent=2))


def baseline_doc(metrics):
    return {"version": BASELINE_VERSION, "metrics": metrics}


@pytest.fixture
def bench_dir(tmp_path):
    write_json(tmp_path / "BENCH_x.json",
               {"states": 100, "speedup": 8.0, "overhead": 1.01,
                "rate": 5000.0, "nested": {"leaf": 7}})
    return tmp_path


class TestLoadBaseline:
    def test_rejects_wrong_version(self, tmp_path):
        p = tmp_path / "b.json"
        write_json(p, {"version": 99, "metrics": [{}]})
        with pytest.raises(ValueError, match="version"):
            load_baseline(p)

    def test_rejects_empty_metrics(self, tmp_path):
        p = tmp_path / "b.json"
        write_json(p, baseline_doc([]))
        with pytest.raises(ValueError, match="no metrics"):
            load_baseline(p)

    def test_rejects_missing_fields(self, tmp_path):
        p = tmp_path / "b.json"
        write_json(p, baseline_doc([{"id": "x", "kind": "exact"}]))
        with pytest.raises(ValueError, match="missing"):
            load_baseline(p)

    def test_rejects_unknown_kind(self, tmp_path):
        p = tmp_path / "b.json"
        write_json(p, baseline_doc([
            {"id": "x", "file": "f", "path": "p", "kind": "fuzzy"}]))
        with pytest.raises(ValueError, match="unknown kind"):
            load_baseline(p)


class TestKinds:
    def _one(self, spec, bench_dir):
        comparison = compare_benchmarks(baseline_doc([spec]), bench_dir)
        (check,) = comparison.checks
        return check

    def test_exact_pass_and_fail(self, bench_dir):
        spec = {"id": "m", "file": "BENCH_x.json", "path": "states",
                "kind": "exact", "baseline": 100}
        assert self._one(spec, bench_dir).status == "ok"
        spec["baseline"] = 101
        assert self._one(spec, bench_dir).status == "fail"

    def test_exact_without_baseline_skips(self, bench_dir):
        spec = {"id": "m", "file": "BENCH_x.json", "path": "states",
                "kind": "exact"}
        assert self._one(spec, bench_dir).status == "skip"

    def test_max_bar(self, bench_dir):
        spec = {"id": "m", "file": "BENCH_x.json", "path": "overhead",
                "kind": "max", "limit": 1.05}
        assert self._one(spec, bench_dir).status == "ok"
        spec["limit"] = 1.0
        assert self._one(spec, bench_dir).status == "fail"

    def test_min_bar(self, bench_dir):
        spec = {"id": "m", "file": "BENCH_x.json", "path": "speedup",
                "kind": "min", "limit": 4.0}
        assert self._one(spec, bench_dir).status == "ok"
        spec["limit"] = 10.0
        assert self._one(spec, bench_dir).status == "fail"

    def test_ratio_higher_better(self, bench_dir):
        spec = {"id": "m", "file": "BENCH_x.json", "path": "rate",
                "kind": "ratio", "baseline": 9000.0, "tolerance": 0.5}
        assert self._one(spec, bench_dir).status == "ok"  # 5000 >= 4500
        spec["baseline"] = 20000.0
        assert self._one(spec, bench_dir).status == "fail"

    def test_ratio_lower_better(self, bench_dir):
        spec = {"id": "m", "file": "BENCH_x.json", "path": "rate",
                "kind": "ratio", "baseline": 4000.0, "tolerance": 0.5,
                "direction": "lower_better"}
        assert self._one(spec, bench_dir).status == "ok"  # 5000 <= 6000
        spec["baseline"] = 3000.0
        assert self._one(spec, bench_dir).status == "fail"

    def test_ratio_without_baseline_skips(self, bench_dir):
        spec = {"id": "m", "file": "BENCH_x.json", "path": "rate",
                "kind": "ratio"}
        assert self._one(spec, bench_dir).status == "skip"

    def test_dotted_path_resolution(self, bench_dir):
        spec = {"id": "m", "file": "BENCH_x.json", "path": "nested.leaf",
                "kind": "exact", "baseline": 7}
        assert self._one(spec, bench_dir).status == "ok"

    def test_missing_source_skips_unless_required(self, bench_dir):
        spec = {"id": "m", "file": "BENCH_gone.json", "path": "x",
                "kind": "exact", "baseline": 1}
        assert self._one(spec, bench_dir).status == "skip"
        spec["required"] = True
        check = self._one(spec, bench_dir)
        assert check.status == "fail"
        assert "(required)" in check.detail


class TestComparison:
    def test_ok_aggregates_and_render(self, bench_dir):
        metrics = [
            {"id": "good", "file": "BENCH_x.json", "path": "states",
             "kind": "exact", "baseline": 100},
            {"id": "bad", "file": "BENCH_x.json", "path": "states",
             "kind": "exact", "baseline": 1},
        ]
        comparison = compare_benchmarks(baseline_doc(metrics), bench_dir)
        assert not comparison.ok
        assert [c.id for c in comparison.failures] == ["bad"]
        text = comparison.render()
        assert "FAIL" in text and "bench compare: FAIL" in text
        doc = comparison.to_dict()
        assert doc["ok"] is False and len(doc["checks"]) == 2

    def test_update_refreshes_recorded_values(self, bench_dir):
        metrics = [
            {"id": "m", "file": "BENCH_x.json", "path": "states",
             "kind": "exact", "baseline": 1},
            {"id": "gone", "file": "BENCH_gone.json", "path": "x",
             "kind": "exact", "baseline": 42},
        ]
        refreshed = update_baseline(baseline_doc(metrics), bench_dir)
        assert refreshed["metrics"][0]["baseline"] == 100
        assert refreshed["metrics"][1]["baseline"] == 42  # source absent
        # rules (kind/limit/file/path) untouched
        assert refreshed["metrics"][0]["kind"] == "exact"
        # the refreshed doc passes its own comparison
        assert compare_benchmarks(refreshed, bench_dir).checks[0].ok


class TestCommittedBaseline:
    """The in-repo gate: committed baseline vs committed reports."""

    def test_committed_baseline_passes_on_committed_reports(self):
        baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE)
        comparison = compare_benchmarks(baseline, REPO_ROOT)
        assert comparison.ok, comparison.render()
        # the deterministic core metrics must actually run, not skip
        ran = {c.id for c in comparison.checks if c.status == "ok"}
        assert "mck.optp.unnecessary_delays" in ran
        assert "mck.anbkh.unnecessary_delays" in ran
        assert "obs.disabled_over_bare" in ran
        assert "obs.flat_disabled_over_bare" in ran

    def test_injected_regression_fails(self, tmp_path):
        """Copy the committed reports, inject a state-count drift, and
        the sentinel must exit nonzero."""
        baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE)
        for name in ("BENCH_mck.json", "BENCH_obs.json",
                     "BENCH_scheduler.json", "BENCH_flatstate.json",
                     "BENCH_sweep.json"):
            (tmp_path / name).write_text((REPO_ROOT / name).read_text())
        doc = json.loads((tmp_path / "BENCH_mck.json").read_text())
        doc["optp"]["unnecessary_delays"] = 3  # Theorem 4 regression
        write_json(tmp_path / "BENCH_mck.json", doc)
        comparison = compare_benchmarks(baseline, tmp_path)
        assert not comparison.ok
        assert any(c.id == "mck.optp.unnecessary_delays"
                   for c in comparison.failures)


class TestCli:
    def _reports(self, tmp_path):
        write_json(tmp_path / "BENCH_x.json", {"states": 100})
        base = tmp_path / "base.json"
        write_json(base, baseline_doc([
            {"id": "m", "file": "BENCH_x.json", "path": "states",
             "kind": "exact", "baseline": 100, "required": True}]))
        return base

    def test_cli_pass_exit_zero(self, tmp_path, capsys):
        from repro.cli import main

        base = self._reports(tmp_path)
        rc = main(["bench", "compare", "--baseline", str(base),
                   "--bench-dir", str(tmp_path)])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out

    def test_cli_regression_exit_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        base = self._reports(tmp_path)
        write_json(tmp_path / "BENCH_x.json", {"states": 99})
        rc = main(["bench", "compare", "--baseline", str(base),
                   "--bench-dir", str(tmp_path)])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out

    def test_cli_missing_baseline_exit_two(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["bench", "compare",
                   "--baseline", str(tmp_path / "absent.json"),
                   "--bench-dir", str(tmp_path)])
        assert rc == 2

    def test_cli_update_rewrites_baseline(self, tmp_path):
        from repro.cli import main

        base = self._reports(tmp_path)
        write_json(tmp_path / "BENCH_x.json", {"states": 123})
        rc = main(["bench", "compare", "--baseline", str(base),
                   "--bench-dir", str(tmp_path), "--update"])
        assert rc == 0
        assert load_baseline(base)["metrics"][0]["baseline"] == 123

    def test_cli_json_verdicts(self, tmp_path):
        from repro.cli import main

        base = self._reports(tmp_path)
        out = tmp_path / "verdicts.json"
        rc = main(["bench", "compare", "--baseline", str(base),
                   "--bench-dir", str(tmp_path), "--json", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["ok"] is True
        assert doc["checks"][0]["id"] == "m"
