"""Critical-path profiler tests.

The load-bearing invariant is conservation: the per-dependency
attribution is a *tiling* of each buffered stretch, so the attributed
blocked time reconciles exactly -- not approximately -- with the
span-measured buffer time, per message and per run.  On the paper's
Ĥ₁ scenario the necessity split must reproduce Theorem 4: OptP
attributes zero unnecessary milliseconds, ANBKH attributes all of its
false-causality delay.
"""

import math
from types import SimpleNamespace

import pytest

from repro.model.operations import WriteId
from repro.obs import Obs, analyze_critical_paths
from repro.obs.spans import MessageSpan, WaitInterval
from repro.sim import run_schedule
from repro.workloads import ALL_SCENARIOS


def span(process, wid, waits, apply_time, sender=0, receipt=0.0):
    return MessageSpan(wid=wid, sender=sender, process=process,
                       variable="x", receipt_time=receipt,
                       apply_time=apply_time, waits=waits)


def fake_result(spans, protocol="fake"):
    return SimpleNamespace(protocol_name=protocol, spans=spans)


def run_scenario(protocol, name="fig3"):
    scen = ALL_SCENARIOS[name]()
    obs = Obs.recording()
    return run_schedule(protocol, 3, scen.schedule, latency=scen.latency,
                        record_state=True, obs=obs)


class TestAttribution:
    def test_requires_spans(self):
        with pytest.raises(ValueError, match="no spans"):
            analyze_critical_paths(SimpleNamespace(protocol_name="x",
                                                   spans=None))

    def test_single_wait_attribution(self):
        s = span(1, WriteId(0, 2),
                 [WaitInterval(start=1.0, dep=(0, 1), end=None)],
                 apply_time=4.0)
        report = analyze_critical_paths(fake_result([s]), audits={})
        (a,) = report.attributions
        assert (a.process, a.wid, a.dep) == (1, WriteId(0, 2), (0, 1))
        assert (a.start, a.end, a.duration) == (1.0, 4.0, 3.0)
        assert a.necessary is None  # no audit entry matched
        assert report.total_blocked == 3.0
        assert report.necessary_blocked == 3.0  # unproven counts as necessary
        assert report.unnecessary_blocked == 0.0

    def test_tiling_reconciles_exactly_per_span(self):
        """Two waits tile [1.0, 5.5]: attribution == buffer_duration."""
        s = span(2, WriteId(0, 3),
                 [WaitInterval(start=1.0, dep=(0, 1), end=2.5),
                  WaitInterval(start=2.5, dep=(1, 1), end=None)],
                 apply_time=5.5)
        report = analyze_critical_paths(fake_result([s]), audits={})
        assert len(report.attributions) == 2
        assert math.fsum(a.duration for a in report.attributions) \
            == s.buffer_duration == 4.5

    def test_necessity_split(self):
        nec = span(1, WriteId(0, 2),
                   [WaitInterval(start=1.0, dep=(0, 1), end=None)],
                   apply_time=2.0)
        unnec = span(2, WriteId(1, 1),
                     [WaitInterval(start=1.0, dep=(0, 1), end=None)],
                     apply_time=4.0)
        audits = {(1, WriteId(0, 2)): True, (2, WriteId(1, 1)): False}
        report = analyze_critical_paths(fake_result([nec, unnec]),
                                        audits=audits)
        assert report.necessary_blocked == 1.0
        assert report.unnecessary_blocked == 3.0
        assert report.total_blocked == 4.0

    def test_unreleased_spans_excluded_but_counted(self):
        dead = span(1, WriteId(0, 9),
                    [WaitInterval(start=1.0, dep=None, end=None)],
                    apply_time=None)
        report = analyze_critical_paths(fake_result([dead]), audits={})
        assert report.unreleased == 1
        assert report.attributions == []
        assert report.chains == []

    def test_undelayed_spans_ignored(self):
        clean = span(1, WriteId(0, 1), [], apply_time=1.0)
        report = analyze_critical_paths(fake_result([clean]), audits={})
        assert report.attributions == []
        assert report.delayed_applies == 0
        assert report.critical_path() is None


class TestChains:
    def test_chain_follows_releasing_edges(self):
        """w0.3 released by w0.2's apply, itself delayed behind w0.1:
        the chain for w0.3 is [w0.3, w0.2]."""
        s2 = span(1, WriteId(0, 2),
                  [WaitInterval(start=1.0, dep=(0, 1), end=None)],
                  apply_time=3.0)
        s3 = span(1, WriteId(0, 3),
                  [WaitInterval(start=0.5, dep=(0, 2), end=None)],
                  apply_time=3.0)
        report = analyze_critical_paths(fake_result([s2, s3]), audits={})
        chains = {c.head.wid: c for c in report.chains}
        assert [s.wid for s in chains[WriteId(0, 3)].spans] == \
            [WriteId(0, 3), WriteId(0, 2)]
        assert chains[WriteId(0, 3)].blocked == 2.5 + 2.0
        assert [s.wid for s in chains[WriteId(0, 2)].spans] == [WriteId(0, 2)]
        crit = report.critical_path()
        assert crit.head.wid == WriteId(0, 3)

    def test_chain_stays_within_process(self):
        """The same wid delayed at another process must not be spliced
        into this process's chain."""
        here = span(1, WriteId(0, 2),
                    [WaitInterval(start=1.0, dep=(0, 1), end=None)],
                    apply_time=2.0)
        elsewhere = span(2, WriteId(0, 1),
                         [WaitInterval(start=0.0, dep=(2, 5), end=None)],
                         apply_time=9.0)
        report = analyze_critical_paths(fake_result([here, elsewhere]),
                                        audits={})
        chain = next(c for c in report.chains if c.process == 1)
        assert [s.wid for s in chain.spans] == [WriteId(0, 2)]

    def test_by_dependency_groups_and_sorts(self):
        s_a = span(1, WriteId(0, 2),
                   [WaitInterval(start=0.0, dep=(0, 1), end=None)],
                   apply_time=1.0)
        s_b = span(2, WriteId(0, 2),
                   [WaitInterval(start=0.0, dep=(0, 1), end=None)],
                   apply_time=2.0)
        s_c = span(1, WriteId(1, 1),
                   [WaitInterval(start=0.0, dep=(1, 9), end=None)],
                   apply_time=0.5)
        report = analyze_critical_paths(fake_result([s_a, s_b, s_c]),
                                        audits={})
        assert report.by_dependency() == [((0, 1), 3.0), ((1, 9), 0.5)]

    def test_render_and_to_dict(self):
        s = span(1, WriteId(0, 2),
                 [WaitInterval(start=1.0, dep=(0, 1), end=None)],
                 apply_time=2.0)
        report = analyze_critical_paths(
            fake_result([s], protocol="demo"), audits={})
        text = report.render()
        assert "demo: 1 delayed applies" in text
        assert "apply(0,1)" in text
        doc = report.to_dict()
        assert doc["critical_path"]["writes"] == [[0, 2]]
        assert doc["total_blocked"] == 1.0


class TestScenarioConservation:
    """Exact reconciliation on real runs: every scenario, both vector
    protocols -- attributed time == span-measured buffer time."""

    @pytest.mark.parametrize("scenario", sorted(ALL_SCENARIOS))
    @pytest.mark.parametrize("protocol", ["optp", "anbkh"])
    def test_attribution_conserves_buffer_time(self, protocol, scenario):
        result = run_scenario(protocol, scenario)
        report = analyze_critical_paths(result)
        measured = math.fsum(
            s.buffer_duration for s in result.spans
            if s.waits and s.apply_time is not None)
        assert math.fsum(a.duration
                         for a in report.attributions) == measured

    def test_fig3_optp_attributes_zero_unnecessary(self):
        report = analyze_critical_paths(run_scenario("optp"))
        assert report.unnecessary_blocked == 0.0
        assert report.delayed_applies == 0

    def test_fig3_anbkh_attributes_positive_unnecessary(self):
        """ANBKH's false-causality delay on Ĥ₁ (Figure 3) becomes
        visible critical-path time; OptP's is zero above."""
        report = analyze_critical_paths(run_scenario("anbkh"))
        assert report.delayed_applies == 1
        assert report.unnecessary_blocked > 0.0
        assert report.necessary_blocked == 0.0
        crit = report.critical_path()
        assert crit is not None
        assert crit.blocked == report.total_blocked

    @pytest.mark.parametrize("protocol", ["optp", "anbkh"])
    def test_optp_never_worse_than_anbkh_on_any_scenario(self, protocol):
        """Sanity over all scenarios: unnecessary blocked time is zero
        for OptP everywhere (Theorem 4 in milliseconds)."""
        for scenario in sorted(ALL_SCENARIOS):
            report = analyze_critical_paths(run_scenario(protocol, scenario))
            if protocol == "optp":
                assert report.unnecessary_blocked == 0.0, scenario
