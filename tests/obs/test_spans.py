"""Lifecycle-span tests: send -> receipt -> buffer(dep) -> apply.

The buffered interval of a span is the write delay of Definition 3;
these tests pin down the dependency attribution: each wait interval
carries the ``(process, seq)`` apply event the scheduler parked the
message under, and re-parking produces one interval per dependency.
"""

import pytest

from repro.core.optp import OptPProtocol
from repro.model.operations import WriteId
from repro.obs import InMemorySink, NULL_OBS, NullSink, Obs, WaitInterval
from repro.sim.cluster import run_schedule
from repro.sim.latency import ScriptedLatency
from repro.sim.node import Node
from repro.sim.trace import Trace
from repro.workloads.ops import Schedule, ScheduledOp, WriteOp


def reversed_chain(n=2, depth=3):
    sender = OptPProtocol(0, n)
    msgs = [sender.write("x", k).outgoing[0].message for k in range(depth)]
    msgs.reverse()
    return msgs


class TestObsHandle:
    def test_null_obs_disabled(self):
        assert NULL_OBS.enabled is False
        assert NULL_OBS.spans is None

    def test_recording_enabled_with_spans(self):
        obs = Obs.recording()
        assert obs.enabled is True
        assert obs.spans == []

    def test_explicit_sink_enables(self):
        assert Obs(InMemorySink()).enabled is True
        assert Obs(NullSink()).enabled is False


class TestNodeSpans:
    def test_chain_waits_attribute_immediate_predecessor(self):
        """Reversed same-sender chain: OptP's ``->co`` summary names
        each write's immediate predecessor apply as the one missing
        dependency, so every buffered span carries exactly one wait."""
        obs = Obs.recording()
        trace = Trace(2)
        node = Node(OptPProtocol(1, 2), trace, clock=lambda: 0.0,
                    dispatch=lambda *a: None, scheduler="indexed", obs=obs)
        for m in reversed_chain():
            node.receive(m)
        assert node.buffered_count == 0

        spans = {s.wid: s for s in obs.spans}
        assert set(spans) == {WriteId(0, s) for s in (1, 2, 3)}
        assert not spans[WriteId(0, 1)].buffered
        for seq in (2, 3):
            span = spans[WriteId(0, seq)]
            assert [w.dep for w in span.waits] == [(0, seq - 1)]
            assert span.released_by == (0, seq - 1)
            assert span.apply_time is not None

    def test_repark_produces_one_wait_per_dependency(self):
        """A write causally after writes from two *different* processes
        has two missing deps at a fresh receiver: it parks under the
        first, wakes when that applies, re-parks under the second --
        one wait interval per dependency, in wakeup order."""
        n = 4
        m0 = OptPProtocol(0, n).write("a", 1).outgoing[0].message
        m1 = OptPProtocol(1, n).write("b", 1).outgoing[0].message
        p2 = OptPProtocol(2, n)
        p2.apply_update(m0)
        p2.apply_update(m1)
        p2.read("a")  # read-from edges pull both writes into ->co
        p2.read("b")
        m2 = p2.write("c", 1).outgoing[0].message

        obs = Obs.recording()
        trace = Trace(n)
        node = Node(OptPProtocol(3, n), trace, clock=lambda: 0.0,
                    dispatch=lambda *a: None, scheduler="indexed", obs=obs)
        for m in (m2, m0, m1):
            node.receive(m)
        assert node.buffered_count == 0

        [span] = [s for s in obs.spans if s.wid == m2.wid]
        assert [w.dep for w in span.waits] == [(0, 1), (1, 1)]
        assert all(w.end is not None for w in span.waits)
        assert span.released_by == (1, 1)
        assert span.apply_time is not None

    def test_duplicate_receipt_keeps_first_span(self):
        obs = Obs.recording()
        trace = Trace(2)
        node = Node(OptPProtocol(1, 2), trace, clock=lambda: 0.0,
                    dispatch=lambda *a: None, obs=obs)
        msg = OptPProtocol(0, 2).write("x", 1).outgoing[0].message
        node.receive(msg)
        node.receive(msg)
        assert len([s for s in obs.spans if s.wid == msg.wid]) == 1


class TestClusterSpans:
    def test_buffered_span_times_and_dep(self):
        """Two writes from p0; the first is delayed to t=10, so the
        second buffers at p1 from its receipt until w1's apply."""
        obs = Obs.recording()
        sched = Schedule.of([
            ScheduledOp(0.0, 0, WriteOp("x")),
            ScheduledOp(1.0, 0, WriteOp("y")),
        ])
        latency = ScriptedLatency(
            {(("update", WriteId(0, 1)), 1): 10.0}, default=1.0
        )
        result = run_schedule("optp", 2, sched, latency=latency, obs=obs)

        spans = {(s.process, s.wid): s for s in result.spans}
        w2 = spans[(1, WriteId(0, 2))]
        assert w2.sender == 0
        assert w2.variable == "y"
        assert w2.send_time == 1.0
        assert w2.receipt_time == 2.0
        assert w2.transit_time == 1.0
        assert w2.waits == [WaitInterval(start=2.0, dep=(0, 1), end=10.0)]
        assert w2.apply_time == 10.0
        assert w2.buffer_duration == pytest.approx(8.0)

        w1 = spans[(1, WriteId(0, 1))]
        assert not w1.buffered
        assert w1.buffer_duration == 0.0
        assert w1.receipt_time == 10.0

    def test_span_delays_match_trace_delays(self):
        """Span buffer accounting agrees with the trace's Definition-3
        delay events, one span wait-set per delayed (process, wid)."""
        obs = Obs.recording()
        sched = Schedule.of([
            ScheduledOp(0.0, 0, WriteOp("x")),
            ScheduledOp(1.0, 0, WriteOp("y")),
            ScheduledOp(2.0, 0, WriteOp("x")),
        ])
        latency = ScriptedLatency(
            {(("update", WriteId(0, 1)), 1): 20.0}, default=1.0
        )
        result = run_schedule("optp", 2, sched, latency=latency, obs=obs)

        delayed = {(ev.process, ev.wid) for ev in result.trace.delayed()}
        buffered = {(s.process, s.wid) for s in result.spans if s.buffered}
        assert buffered == delayed

        durations = sorted(
            s.buffer_duration for s in result.spans if s.buffered
        )
        assert durations == sorted(result.delay_durations())
