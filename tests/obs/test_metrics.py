"""Unit tests for the metrics registry primitives."""

import json

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5


class TestGauge:
    def test_tracks_high_water(self):
        g = Gauge()
        g.set(3)
        g.set(7)
        g.set(2)
        assert g.value == 2
        assert g.high_water == 7

    def test_inc_dec(self):
        g = Gauge()
        g.inc(3)
        g.dec()
        assert g.value == 2
        assert g.high_water == 3


class TestHistogram:
    def test_observations(self):
        h = Histogram()
        for v in [1.0, 3.0, 2.0]:
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.mean == 2.0
        assert h.percentile(50) == 2.0
        assert h.percentile(100) == 3.0

    def test_empty(self):
        h = Histogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.percentile(99) == 0.0


class TestRegistry:
    def test_same_labels_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("x", process=1)
        b = reg.counter("x", process=1)
        c = reg.counter("x", process=2)
        assert a is b and a is not c

    def test_label_order_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counter("x", a=1, b=2)
        b = reg.counter("x", b=2, a=1)
        assert a is b

    def test_total_sums_series(self):
        reg = MetricsRegistry()
        reg.counter("n.applies", process=0).inc(3)
        reg.counter("n.applies", process=1).inc(4)
        assert reg.total("n.applies") == 7

    def test_value_lookup(self):
        reg = MetricsRegistry()
        reg.counter("c", process=0).inc(2)
        reg.gauge("g").set(9)
        assert reg.value("c", process=0) == 2
        assert reg.value("g") == 9
        assert reg.value("missing") is None
        assert reg.value("c", process=99) is None

    def test_names(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        reg.histogram("c")
        assert reg.names() == ["a", "b", "c"]

    def test_collect_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", process=0).inc()
        reg.gauge("g", process=1).set(5)
        reg.histogram("h").observe(2.5)
        snap = reg.collect()
        assert snap["counters"]["c"] == [
            {"labels": {"process": 0}, "value": 1}
        ]
        [g] = snap["gauges"]["g"]
        assert g["value"] == 5 and g["high_water"] == 5
        [h] = snap["histograms"]["h"]
        assert h["count"] == 1 and h["p99"] == 2.5

    def test_to_json_round_trips_with_meta(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        doc = json.loads(reg.to_json(protocol="optp", n_processes=4))
        assert doc["version"] == 1
        assert doc["protocol"] == "optp"
        assert doc["metrics"]["counters"]["c"][0]["value"] == 3
