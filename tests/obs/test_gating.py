"""Observability gating: a disabled-obs run must be *trace-identical*
to an instrumented build's enabled run -- instrumentation may observe,
never perturb (no RNG draws, no event reordering, no extra events).

Byte-comparing the serialized traces is the strongest cheap check: any
instrumentation-induced divergence in event order, timestamps, or
payloads shows up.  The companion overhead bound lives in
``benchmarks/test_bench_obs_overhead.py``.
"""

import pytest

from repro.obs import Obs
from repro.sim.cluster import run_schedule
from repro.sim.latency import ExponentialLatency
from repro.sim.serialize import trace_to_jsonl
from repro.workloads.generators import write_burst_schedule

PROTOCOLS = ["optp", "anbkh", "sequencer"]


def _run(protocol, **kwargs):
    sched = write_burst_schedule(3, 2, 4)
    return run_schedule(
        protocol, 3, sched,
        latency=ExponentialLatency(mean=2.0, seed=11),
        **kwargs,
    )


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_enabled_run_is_trace_identical(protocol):
    plain = _run(protocol)
    observed = _run(protocol, obs=Obs.recording())
    assert trace_to_jsonl(plain.trace) == trace_to_jsonl(observed.trace)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_disabled_run_carries_no_observability(protocol):
    result = _run(protocol)
    assert result.metrics is None
    assert result.spans is None


def test_enabled_run_carries_metrics_and_spans():
    result = _run("optp", obs=Obs.recording())
    assert result.metrics is not None
    counters = result.metrics["counters"]
    # cross-check instrument totals against the trace itself
    n_applies = sum(s["value"] for s in counters["node.applies"])
    from repro.sim.trace import EventKind
    assert n_applies == sum(
        1 for _ in result.trace.of_kind(EventKind.APPLY))
    n_writes = sum(s["value"] for s in counters["node.writes"])
    assert n_writes == result.writes_issued
    assert result.spans is not None and len(result.spans) > 0


def test_legacy_scheduler_instrumented_run():
    """The legacy re-scan scheduler cannot enumerate wait predicates;
    spans still form, with best-effort dependency attribution."""
    plain = _run("optp", scheduler="legacy")
    observed = _run("optp", scheduler="legacy", obs=Obs.recording())
    assert trace_to_jsonl(plain.trace) == trace_to_jsonl(observed.trace)
    assert observed.metrics["counters"].get("sched.scan_classifies")
    buffered = [s for s in observed.spans if s.buffered]
    assert all(s.apply_time is not None or s.discard_time is not None
               for s in buffered)


def test_protocol_stats_view_and_rollup():
    """Satellite: per-node stats remain on RunResult, with the
    cluster-wide rollup and (when enabled) the registry mirror."""
    result = _run("optp", obs=Obs.recording())
    assert len(result.protocol_stats) == 3
    totals = result.stats_total
    for key in result.protocol_stats[0]:
        assert totals[key] == sum(s[key] for s in result.protocol_stats)
    gauges = result.metrics["gauges"]
    for key, total in totals.items():
        series = gauges[f"protocol.{key}"]
        assert sum(s["value"] for s in series) == total
