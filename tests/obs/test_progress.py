"""ProgressSink tests: throttling, field merging, rates, snapshots --
plus the checker/sweep integration that feeds it.

Progress is telemetry-only: the integration tests assert both that
ticks arrive and that arming a sink changes no verdicts.
"""

import io

from repro.obs import ProgressSink
from repro.obs.progress import STATES_PER_TICK


def sink(**kwargs):
    stream = io.StringIO()
    return ProgressSink(stream, **kwargs), stream


class TestEmission:
    def test_first_update_emits_immediately(self):
        s, stream = sink(interval=3600.0)
        s.update(states=10)
        assert s.emissions == 1
        assert "states=10" in stream.getvalue()

    def test_throttle_suppresses_until_interval(self):
        s, stream = sink(interval=3600.0)
        for i in range(50):
            s.update(states=i)
        assert s.updates == 50
        assert s.emissions == 1  # only the unthrottled first one

    def test_zero_interval_emits_every_update(self):
        s, _ = sink(interval=0.0)
        for i in range(5):
            s.update(states=i)
        assert s.emissions == 5

    def test_fields_merge_across_updates(self):
        s, stream = sink(interval=0.0)
        s.update(states=1)
        s.update(shards=3)
        line = stream.getvalue().splitlines()[-1]
        assert "states=1" in line and "shards=3" in line

    def test_label_and_float_formatting(self):
        s, stream = sink(interval=0.0, label="check:optp")
        s.update(prune_ratio=0.56874)
        line = stream.getvalue()
        assert "[progress check:optp]" in line
        assert "prune_ratio=0.5687" in line

    def test_close_emits_final_line(self):
        s, stream = sink(interval=3600.0)
        s.update(states=1)
        s.update(states=99)  # throttled
        s.close()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "done" in lines[-1] and "states=99" in lines[-1]

    def test_close_without_updates_is_silent(self):
        s, stream = sink()
        s.close()
        assert stream.getvalue() == ""
        assert s.emissions == 0


class TestRates:
    def test_rate_computed_from_emission_deltas(self):
        s, stream = sink(interval=0.0, rate_fields=("states",))
        s.update(states=0)
        s.update(states=1000)
        assert "states" in s.rates
        assert s.rates["states"] > 0
        assert "states/s=" in stream.getvalue().splitlines()[-1]

    def test_non_numeric_rate_field_skipped(self):
        s, _ = sink(interval=0.0, rate_fields=("states",))
        s.update(states="n/a")
        s.update(states="n/a")
        assert "states" not in s.rates


class TestSnapshot:
    def test_snapshot_shape(self):
        s, _ = sink(interval=0.0)
        s.update(states=4096, shards=2)
        s.close()
        snap = s.snapshot()
        assert snap["fields"] == {"states": 4096, "shards": 2}
        assert snap["updates"] == 1
        assert snap["emissions"] == 2
        assert isinstance(snap["rates"], dict)
        assert snap["wall_seconds"] >= 0


class TestCheckerIntegration:
    def test_check_ticks_and_verdict_unchanged(self):
        from repro.mck.explorer import CheckConfig, check, workload_by_name

        config = CheckConfig(protocol="optp",
                             workload=workload_by_name("pair"))
        s, stream = sink(interval=0.0)
        with_progress = check(config, progress=s)
        bare = check(config)
        assert with_progress.verdict_dict() == bare.verdict_dict()
        assert s.updates >= 1  # the final flush always ticks
        assert s.latest["states"] == bare.states
        assert "states=" in stream.getvalue()

    def test_run_checks_inline_passes_progress_through(self):
        from repro.mck.explorer import CheckConfig, workload_by_name
        from repro.mck.parallel import run_checks

        configs = [CheckConfig(protocol=p, workload=workload_by_name("pair"))
                   for p in ("optp", "anbkh")]
        s, _ = sink(interval=0.0)
        results, _stats = run_checks(configs, jobs=1, progress=s)
        assert [r.ok for r in results] == [True, True]
        assert s.updates >= 2

    def test_states_per_tick_is_power_of_two(self):
        assert STATES_PER_TICK & (STATES_PER_TICK - 1) == 0


class TestSweepIntegration:
    def test_sweep_runner_ticks_per_spec(self):
        from repro.sweep import LatencySpec, RunSpec, SweepRunner
        from repro.workloads.generators import WorkloadConfig

        specs = [
            RunSpec(protocol="optp", n_processes=3,
                    config=WorkloadConfig(n_processes=3, ops_per_process=4,
                                          seed=s),
                    latency=LatencySpec.seeded(s))
            for s in range(3)
        ]
        s, stream = sink(interval=0.0, rate_fields=("done",))
        runner = SweepRunner(progress=s)
        out = runner.run(specs)
        assert len(out) == 3
        assert s.latest["done"] == 3
        assert s.latest["total"] == 3
        assert "done=3" in stream.getvalue()
