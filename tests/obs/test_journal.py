"""Flight-recorder tests: ring bound, activate synthesis, JSONL dumps,
and the ``EngineLimitError.journal_tail`` integration.

The recorder is the run's black box: bounded, structured, and armed to
dump itself exactly when something goes wrong (an engine limit or a
model-checking violation) -- so these tests exercise the failure paths
on purpose.
"""

import json

import pytest

from repro.model.operations import WriteId
from repro.obs import (
    FlightRecorder,
    InMemorySink,
    JournalSink,
    Obs,
    events_from_jsonl,
)
from repro.obs.journal import JOURNAL_VERSION
from repro.sim import SeededLatency, run_schedule
from repro.sim.engine import Engine, EngineLimitError
from repro.workloads import ALL_SCENARIOS


class TestRingBuffer:
    def test_capacity_bound_and_dropped(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.append("apply", float(i), 0, WriteId(0, i + 1))
        assert len(rec) == 4
        assert rec.total_recorded == 10
        assert rec.dropped == 6
        # newest-last, global seq preserved across eviction
        assert [e.seq for e in rec.events()] == [6, 7, 8, 9]

    def test_last_k(self):
        rec = FlightRecorder(capacity=8)
        for i in range(5):
            rec.append("apply", float(i), 0)
        assert [e.seq for e in rec.last(2)] == [3, 4]
        assert rec.last(0) == []
        assert len(rec.last(100)) == 5

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_note_records_out_of_band(self):
        rec = FlightRecorder()
        rec.note("engine-limit", reason="max_events")
        (e,) = rec.events()
        assert e.kind == "engine-limit"
        assert e.process == -1
        assert e.extra == {"reason": "max_events"}


class TestJsonl:
    def test_round_trip(self):
        rec = FlightRecorder(capacity=16)
        rec.append("buffer", 1.0, 2, WriteId(0, 3), (0, 2))
        rec.append("apply", 2.0, 2, WriteId(0, 3))
        header, events = events_from_jsonl(rec.to_jsonl(run="t"))
        assert header["version"] == JOURNAL_VERSION
        assert header["recorded"] == 2
        assert header["dropped"] == 0
        assert header["run"] == "t"
        assert events[0] == {"seq": 0, "t": 1.0, "kind": "buffer",
                             "process": 2, "wid": [0, 3], "dep": [0, 2]}
        assert events[1]["kind"] == "apply"

    def test_parse_rejects_missing_header(self):
        with pytest.raises(ValueError, match="header"):
            events_from_jsonl('{"seq": 0}\n')

    def test_parse_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            events_from_jsonl("\n\n")

    def test_parse_rejects_unknown_version(self):
        bad = json.dumps({"journal": True, "version": 99}) + "\n"
        with pytest.raises(ValueError, match="version"):
            events_from_jsonl(bad)

    def test_dump_writes_file(self, tmp_path):
        rec = FlightRecorder()
        rec.append("send", 0.0, 0, WriteId(0, 1))
        path = tmp_path / "j.jsonl"
        rec.dump(str(path), reason="manual")
        header, events = events_from_jsonl(path.read_text())
        assert header["reason"] == "manual"
        assert len(events) == 1


class TestMaybeDump:
    def test_unarmed_is_noop(self):
        rec = FlightRecorder()
        assert rec.maybe_dump("whatever") is None
        assert rec.autodumps == 0

    def test_armed_dumps_with_reason(self, tmp_path):
        path = tmp_path / "auto.jsonl"
        rec = FlightRecorder(autodump_path=str(path))
        rec.append("apply", 0.0, 0, WriteId(0, 1))
        assert rec.maybe_dump("engine-limit") == str(path)
        assert rec.autodumps == 1
        header, _ = events_from_jsonl(path.read_text())
        assert header["reason"] == "engine-limit"

    def test_dump_failure_never_raises(self, tmp_path):
        rec = FlightRecorder(autodump_path=str(tmp_path / "nope" / "x"))
        assert rec.maybe_dump("engine-limit") is None
        assert rec.autodumps == 0


class TestActivateSynthesis:
    """The tee synthesizes ``activate`` from buffer/repark/apply alone."""

    def test_buffered_apply_emits_activate_with_final_edge(self):
        rec = FlightRecorder()
        sink = JournalSink(rec)
        wid = WriteId(0, 2)
        sink.on_buffer(1.0, 1, wid, (0, 1))
        sink.on_repark(2.0, 1, wid, (2, 1))
        sink.on_apply(3.0, 1, wid)
        kinds = [(e.kind, e.dep) for e in rec.events()]
        assert kinds == [("buffer", (0, 1)), ("repark", (2, 1)),
                         ("activate", (2, 1)), ("apply", None)]

    def test_unbuffered_apply_has_no_activate(self):
        rec = FlightRecorder()
        sink = JournalSink(rec)
        sink.on_apply(1.0, 0, WriteId(0, 1))
        assert [e.kind for e in rec.events()] == ["apply"]

    def test_dep_none_buffer_still_activates(self):
        """A dep of None (legacy scheduling) is distinct from 'not
        buffered' -- the sentinel, not falsiness, decides."""
        rec = FlightRecorder()
        sink = JournalSink(rec)
        sink.on_buffer(1.0, 1, WriteId(0, 2), None)
        sink.on_apply(2.0, 1, WriteId(0, 2))
        kinds = [e.kind for e in rec.events()]
        assert kinds == ["buffer", "activate", "apply"]

    def test_discard_clears_tracking(self):
        rec = FlightRecorder()
        sink = JournalSink(rec)
        wid = WriteId(0, 2)
        sink.on_buffer(1.0, 1, wid, (0, 1))
        sink.on_discard(2.0, 1, wid)
        sink.on_apply(3.0, 1, wid)  # hypothetical re-delivery
        kinds = [e.kind for e in rec.events()]
        assert kinds == ["buffer", "discard", "apply"]  # no activate

    def test_tee_forwards_to_inner_sink(self):
        inner = InMemorySink()
        sink = JournalSink(FlightRecorder(), inner)
        wid = WriteId(0, 1)
        sink.on_receipt(0.0, 1, wid, "x", 0)
        sink.on_apply(1.0, 1, wid)
        assert sink.records_spans is True
        assert len(inner.spans) == 1


class TestRunIntegration:
    def test_recording_journal_captures_fig3_lifecycle(self):
        obs = Obs.recording(journal=True)
        scen = ALL_SCENARIOS["fig3"]()
        run_schedule("anbkh", 3, scen.schedule, latency=scen.latency,
                     record_state=True, obs=obs)
        events = obs.journal.events()
        kinds = {e.kind for e in events}
        assert {"send", "receipt", "buffer", "activate",
                "apply", "read"} <= kinds
        # every activate carries the releasing causal edge and is
        # immediately followed by its apply
        for i, e in enumerate(events):
            if e.kind == "activate":
                assert e.dep is not None
                nxt = events[i + 1]
                assert nxt.kind == "apply" and nxt.wid == e.wid
        # activate count == spans that were buffered and applied
        buffered_applied = sum(
            1 for s in obs.spans if s.waits and s.apply_time is not None)
        assert sum(1 for e in events
                   if e.kind == "activate") == buffered_applied == 1

    def test_journal_capacity_kwarg(self):
        obs = Obs.recording(journal=True, journal_capacity=2)
        assert obs.journal.capacity == 2
        assert Obs.recording().journal is None


class TestEngineLimitTail:
    def _wedge(self, obs):
        engine = Engine(obs=obs)
        engine.schedule_at(0.0, lambda: None)
        with pytest.raises(EngineLimitError) as exc_info:
            engine.run(stop=lambda: False)
        return exc_info.value

    def test_error_carries_journal_tail(self, tmp_path):
        path = tmp_path / "wedge.jsonl"
        rec = FlightRecorder(autodump_path=str(path))
        obs = Obs(InMemorySink(), journal=rec)
        err = self._wedge(obs)
        assert err.journal_tail
        last = err.journal_tail[-1]
        assert last.kind == "engine-limit"
        assert "liveness" in last.extra["reason"]
        assert "journal_tail=" in str(err)
        # the armed auto-dump fired before the exception propagated
        header, _ = events_from_jsonl(path.read_text())
        assert header["reason"] == "engine-limit"
        assert rec.autodumps == 1

    def test_error_without_journal_has_empty_tail(self):
        err = self._wedge(Obs.recording())
        assert err.journal_tail == []
        assert "journal_tail" not in str(err)

    def test_tail_is_bounded(self):
        rec = FlightRecorder()
        for i in range(200):
            rec.append("apply", float(i), 0)
        obs = Obs(InMemorySink(), journal=rec)
        err = self._wedge(obs)
        assert len(err.journal_tail) == Engine.JOURNAL_TAIL_EVENTS

    def test_wedged_cluster_run_dumps_journal(self, tmp_path):
        """End-to-end: a run that cannot quiesce dumps its journal."""
        from repro.sim.cluster import SimCluster
        from repro.workloads.ops import Schedule, ScheduledOp, WriteOp

        path = tmp_path / "cluster.jsonl"
        rec = FlightRecorder(autodump_path=str(path))
        obs = Obs(InMemorySink(), journal=rec)
        # second-seq write shipped alone: receivers buffer it forever
        sender = SimCluster("optp", 3, obs=obs)
        sender.nodes[0].protocol.write("x", 0)  # swallow seq 1
        sched = Schedule([ScheduledOp(0.0, 0, WriteOp("x", 1))])
        with pytest.raises(EngineLimitError) as exc_info:
            sender.run_schedule(sched)
        assert path.exists()
        kinds = [e.kind for e in exc_info.value.journal_tail]
        assert "buffer" in kinds
        assert kinds[-1] == "engine-limit"
