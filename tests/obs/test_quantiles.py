"""Exact-quantile property tests: nearest-rank == numpy inverted_cdf.

``DelayStats``/``Histogram`` quantiles feed the critical-path and
overhead reports, so they are pinned to an external definition:
:func:`repro.analysis.metrics.percentile` must agree bit-for-bit with
``numpy.percentile(..., method="inverted_cdf")`` on arbitrary data.
Hypothesis explores the space; a few hand cases anchor the edges.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import DelayStats, percentile
from repro.obs.metrics import Histogram, MetricsRegistry

# finite, no NaN: a NaN duration is a bug upstream, not a quantile input
values_st = st.lists(
    st.floats(min_value=-1e12, max_value=1e12,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=200)

q_st = st.one_of(
    st.sampled_from([0.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0]),
    st.floats(min_value=0.0, max_value=100.0,
              allow_nan=False, allow_infinity=False))


def np_inverted_cdf(vals, q):
    return float(np.percentile(np.asarray(vals, dtype=float), q,
                               method="inverted_cdf"))


class TestPercentile:
    @settings(max_examples=300, deadline=None)
    @given(vals=values_st, q=q_st)
    def test_matches_numpy_inverted_cdf(self, vals, q):
        ours = percentile(sorted(vals), q)
        assert ours == np_inverted_cdf(vals, q)

    @settings(deadline=None)
    @given(vals=values_st, q=q_st)
    def test_result_is_an_observed_value(self, vals, q):
        """Nearest-rank never interpolates: the quantile is a datum."""
        assert percentile(sorted(vals), q) in vals

    def test_empty_returns_zero(self):
        assert percentile([], 99.9) == 0.0

    @pytest.mark.parametrize("q", [-0.1, 100.1])
    def test_out_of_range_q_rejected(self, q):
        with pytest.raises(ValueError):
            percentile([1.0], q)

    def test_p999_needs_a_thousand_samples_to_leave_the_max_bucket(self):
        """p99.9 first drops below the max at n=1001 observations."""
        vals = sorted(float(i) for i in range(1001))
        assert percentile(vals, 99.9) == 999.0 == np_inverted_cdf(vals, 99.9)
        assert percentile(vals, 100.0) == 1000.0


class TestDelayStats:
    def test_empty_is_all_zero(self):
        s = DelayStats.of([])
        assert (s.count, s.mean, s.p50, s.p90, s.p95, s.p99, s.p999,
                s.max) == (0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    @settings(max_examples=100, deadline=None)
    @given(vals=values_st)
    def test_fields_match_numpy(self, vals):
        s = DelayStats.of(vals)
        assert s.count == len(vals)
        assert s.max == max(vals)
        for field, q in [("p50", 50), ("p90", 90), ("p95", 95),
                         ("p99", 99), ("p999", 99.9)]:
            assert getattr(s, field) == np_inverted_cdf(vals, q), field

    @settings(deadline=None)
    @given(vals=values_st)
    def test_quantiles_monotone(self, vals):
        s = DelayStats.of(vals)
        assert s.p50 <= s.p90 <= s.p95 <= s.p99 <= s.p999 <= s.max


class TestHistogram:
    @settings(max_examples=100, deadline=None)
    @given(vals=values_st, q=q_st)
    def test_percentile_matches_numpy(self, vals, q):
        h = Histogram()
        for v in vals:
            h.observe(v)
        assert h.percentile(q) == np_inverted_cdf(vals, q)

    @settings(max_examples=50, deadline=None)
    @given(vals=values_st)
    def test_registry_snapshot_quantiles_exact(self, vals):
        reg = MetricsRegistry()
        h = reg.histogram("delay.duration", protocol="optp")
        for v in vals:
            h.observe(v)
        (series,) = reg.collect()["histograms"]["delay.duration"]
        assert series["count"] == len(vals)
        assert series["p90"] == np_inverted_cdf(vals, 90)
        assert series["p999"] == np_inverted_cdf(vals, 99.9)
        assert series["max"] == max(vals)
