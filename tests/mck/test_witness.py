"""Witness-trace regression fixtures: build / save / load / replay.

A violation found by the checker must survive the trip to disk and
back: ``build_witness`` serializes the minimized counterexample,
``replay_witness`` re-executes it from the initial state and confirms
the stored verdict **byte-identically** (trace text included).  These
tests pin that contract, the strict load-time validation that protects
it, and the ``repro-dsm check --replay`` CLI entry point.
"""

import json

import pytest

from repro.cli import main
from repro.mck import (
    CheckConfig,
    build_witness,
    check,
    load_witness,
    parse_faults,
    replay_path,
    replay_witness,
    save_witness,
    workload_by_name,
)
from repro.mck.witness import config_from_dict, config_to_dict

#: A named-protocol configuration with a known violation: OptP loses a
#: message and never retransmits, so quiescence leaves a write unapplied
#: (liveness).  Small state space -- fast to explore and minimize.
LOSSY = dict(protocol="optp", workload="pair",
             faults="drop:1,noretransmit")


def lossy_config(**overrides):
    kwargs = dict(
        protocol=LOSSY["protocol"],
        workload=workload_by_name(LOSSY["workload"]),
        faults=parse_faults(LOSSY["faults"]),
        stop_on_violation=True,
    )
    kwargs.update(overrides)
    return CheckConfig(**kwargs)


@pytest.fixture(scope="module")
def lossy_witness():
    config = lossy_config()
    result = check(config)
    assert not result.ok
    return config, result, build_witness(config, result.violations[0])


class TestBuild:
    def test_document_shape(self, lossy_witness):
        _, _, doc = lossy_witness
        assert doc["mck_witness"] == 1
        assert sorted(doc) == sorted(
            ["mck_witness", "config", "choices", "finding", "verdict",
             "trace"])
        assert doc["finding"] in doc["verdict"]["findings"]
        assert doc["trace"].endswith("\n")

    def test_minimization_shortens_or_matches(self, lossy_witness):
        config, result, doc = lossy_witness
        assert 0 < len(doc["choices"]) <= len(result.violations[0].choices)

    def test_unminimized_build_keeps_original_path(self, lossy_witness):
        config, result, _ = lossy_witness
        doc = build_witness(config, result.violations[0], minimize=False)
        assert [tuple(t) for t in doc["choices"]] == \
            list(result.violations[0].choices)

    def test_factory_protocol_refused(self):
        from tests.mck.mutants import BrokenOptP

        config = CheckConfig(protocol=BrokenOptP,
                             workload=workload_by_name("pair"))
        with pytest.raises(ValueError, match="factory"):
            config_to_dict(config)


class TestRoundTrip:
    def test_save_load_replay_is_byte_identical(self, tmp_path,
                                                lossy_witness):
        _, _, doc = lossy_witness
        path = tmp_path / "w.json"
        save_witness(doc, path)
        loaded = load_witness(path)
        assert loaded == doc
        outcome, problems = replay_witness(loaded)
        assert problems == []
        assert outcome.trace_jsonl == doc["trace"]

    def test_config_round_trip(self, lossy_witness):
        config, _, doc = lossy_witness
        assert config_to_dict(config_from_dict(doc["config"])) \
            == doc["config"]

    def test_save_is_deterministic(self, tmp_path, lossy_witness):
        _, _, doc = lossy_witness
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_witness(doc, a)
        save_witness(json.loads(a.read_text()), b)
        assert a.read_bytes() == b.read_bytes()


class TestStrictLoading:
    def test_rejects_non_json(self, tmp_path):
        path = tmp_path / "w.json"
        path.write_text("not json {")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_witness(path)

    def test_rejects_wrong_version(self, tmp_path, lossy_witness):
        _, _, doc = lossy_witness
        path = tmp_path / "w.json"
        save_witness({**doc, "mck_witness": 99}, path)
        with pytest.raises(ValueError, match="version"):
            load_witness(path)

    @pytest.mark.parametrize("mutate", [
        lambda d: {k: v for k, v in d.items() if k != "trace"},   # missing
        lambda d: {**d, "extra": 1},                              # extra
        lambda d: [d],                                            # not a dict
    ])
    def test_rejects_wrong_key_set(self, tmp_path, lossy_witness, mutate):
        _, _, doc = lossy_witness
        path = tmp_path / "w.json"
        path.write_text(json.dumps(mutate(doc)))
        with pytest.raises(ValueError, match="keys"):
            load_witness(path)

    def test_rejects_malformed_config(self, lossy_witness):
        _, _, doc = lossy_witness
        bad = dict(doc["config"])
        del bad["seed"]
        with pytest.raises(ValueError, match="malformed check config"):
            config_from_dict(bad)


class TestStaleness:
    def test_disabled_choice_is_a_stale_fixture_error(self):
        """A witness whose path no longer exists in the transition
        system (code or workload changed) must fail loudly, not replay
        something else."""
        config = lossy_config(faults=parse_faults("none"))
        with pytest.raises(ValueError, match="not enabled"):
            # drop transitions only exist under a drop-fault adversary
            replay_path(config, [("op", 0), ("drop", "u:0.0>1")])

    def test_tampered_verdict_reported_as_mismatch(self, lossy_witness):
        _, _, doc = lossy_witness
        tampered = json.loads(json.dumps(doc))
        tampered["verdict"]["status"] = "quiescent"
        tampered["verdict"]["findings"] = []
        outcome, problems = replay_witness(tampered)
        assert problems  # status and findings both differ
        assert any("status" in p for p in problems)

    def test_tampered_trace_reported_as_mismatch(self, lossy_witness):
        _, _, doc = lossy_witness
        tampered = json.loads(json.dumps(doc))
        tampered["trace"] += " "
        _, problems = replay_witness(tampered)
        assert any("byte-identical" in p for p in problems)


class TestCliReplay:
    def test_check_writes_witness_and_replay_reproduces(
        self, tmp_path, capsys
    ):
        wpath = tmp_path / "witness.json"
        rc = main(["check", "-p", LOSSY["protocol"],
                   "-w", LOSSY["workload"],
                   "--faults", LOSSY["faults"],
                   "--no-cache", "--witness-out", str(wpath)])
        out = capsys.readouterr().out
        assert rc == 1                       # violations found
        assert wpath.exists()
        assert "witness" in out

        rc = main(["check", "--replay", str(wpath)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "reproduced byte-identically" in out

    def test_replay_rejects_garbage_file(self, tmp_path, capsys):
        path = tmp_path / "bogus.json"
        path.write_text("{}")
        assert main(["check", "--replay", str(path)]) == 2
