"""Deliberately broken protocol variants: the checker's self-check.

A model checker that has never caught a bug is untrustworthy.  These
mutants plant known protocol bugs -- each a one-token mutation of a
real activation predicate -- and ``tests/mck/test_checker.py`` asserts
the checker rejects both with a replayable witness trace:

- :class:`BrokenOptP` weakens OptP's cross-sender check by one
  (``W_co[t] <= Apply[t] + 1`` instead of ``<= Apply[t]``): a write may
  be applied while the *last* write of its causal past from another
  sender is still missing -- a Theorem-3 safety violation in any
  interleaving that delivers the dependent write first.
- :class:`BrokenANBKH` skips vector component 0 in the delivery
  condition: causal dependencies on ``p_0``'s writes are silently
  ignored, so a message can overtake the ``p_0`` write it depends on.

Both also mirror the mutation in ``missing_deps`` so the indexed
scheduler parks/wakes consistently with the broken predicate (the bug
is in the *predicate*, not in scheduler bookkeeping).

:class:`LeakyOptP` breaks a different contract: it ships a mutable
list inside message payloads and keeps mutating it after send,
violating the payload-immutability rule of ``repro.core.base`` -- the
checker's *isolation* invariant must flag it at send, at delivery, and
in the terminal pending-pool scan.
"""

from typing import List, Optional, Tuple

from repro.core.base import Disposition, UpdateMessage
from repro.core.optp import WRITE_CO_KEY, OptPProtocol
from repro.protocols.anbkh import VT_KEY, ANBKHProtocol


class BrokenOptP(OptPProtocol):
    """OptP with the cross-sender wait weakened by one write."""

    name = "broken-optp"

    def classify(self, msg: UpdateMessage) -> Disposition:
        u = msg.sender
        w_co = msg.payload[WRITE_CO_KEY]
        if self.apply_vec[u] != w_co[u] - 1:
            return Disposition.BUFFER
        for t in range(self.n_processes):
            # BUG: admits one still-missing causal predecessor of p_t.
            if t != u and w_co[t] > self.apply_vec[t] + 1:
                return Disposition.BUFFER
        return Disposition.APPLY

    def missing_deps(self, msg: UpdateMessage) -> Optional[List[Tuple[int, int]]]:
        u = msg.sender
        w_co = msg.payload[WRITE_CO_KEY]
        deps: List[Tuple[int, int]] = []
        if self.apply_vec[u] < w_co[u] - 1:
            deps.append((u, w_co[u] - 1))
        for t in range(self.n_processes):
            if t != u and w_co[t] > self.apply_vec[t] + 1:
                deps.append((t, w_co[t] - 1))
        return deps


class LeakyOptP(OptPProtocol):
    """OptP that leaks shared mutable state through payloads."""

    name = "leaky-optp"

    def __init__(self, process_id: int, n_processes: int) -> None:
        super().__init__(process_id, n_processes)
        self._scratch: List[int] = []

    def write(self, variable, value):
        outcome = super().write(variable, value)
        # BUG: every sent payload aliases the same list, mutated on
        # each subsequent write -- in-flight messages change under the
        # receiver's feet.
        self._scratch.append(len(self._scratch))
        for out in outcome.outgoing:
            out.message.payload["scratch"] = self._scratch
        return outcome


class BrokenANBKH(ANBKHProtocol):
    """ANBKH that ignores causal dependencies on ``p_0``."""

    name = "broken-anbkh"

    def classify(self, msg: UpdateMessage) -> Disposition:
        u = msg.sender
        vt = msg.payload[VT_KEY]
        if vt[u] != self.vc[u] + 1:
            return Disposition.BUFFER
        # BUG: starts at 1 -- p_0's writes are never waited for.
        for t in range(1, self.n_processes):
            if t != u and vt[t] > self.vc[t]:
                return Disposition.BUFFER
        return Disposition.APPLY

    def missing_deps(self, msg: UpdateMessage) -> Optional[List[Tuple[int, int]]]:
        u = msg.sender
        vt = msg.payload[VT_KEY]
        deps: List[Tuple[int, int]] = []
        if self.vc[u] + 1 < vt[u]:
            deps.append((u, vt[u] - 1))
        for t in range(1, self.n_processes):
            if t != u and vt[t] > self.vc[t]:
                deps.append((t, vt[t]))
        return deps
