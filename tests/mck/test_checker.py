"""Model-checker acceptance tests.

Four layers:

- **OptP exhaustively clean** -- safety + optimality + liveness +
  convergence hold on *every* interleaving of three workloads whose
  state spaces each exceed 1000 states (Theorems 3-5 machine-checked
  over the full interleaving space, not a sample).
- **ANBKH safe but non-optimal** -- same driver, same workloads: zero
  violations, but unnecessary delays > 0 on the Figure 3 history (the
  paper's false-causality gap, found by exhaustion rather than by the
  one pinned scenario).
- **Mutation self-check** -- two deliberately broken variants
  (``tests/mck/mutants.py``) must each be rejected with a safety
  violation and a short replayable witness.
- **Differential against the offline analyzers** -- the incremental
  tracker's quantities (legality verdict, causal pasts = X_co-safe)
  must agree with :mod:`repro.analysis` / :mod:`repro.model` on random
  interleavings.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.enabling import x_co_safe
from repro.mck import (
    CheckConfig,
    ControlledCluster,
    check,
    minimize_witness,
    parse_faults,
    workload_by_name,
)
from repro.mck.witness import replay_path
from repro.model.legality import check_causal_consistency

from tests.mck.mutants import BrokenANBKH, BrokenOptP
from tests.strategies import mck_workloads

#: The acceptance floor: three distinct workloads, >= 1000 states each.
BIG_WORKLOADS = ("h1", "triangle", "braid")


def run_exhaustive(protocol, workload_name, faults="none", **kwargs):
    return check(CheckConfig(
        protocol=protocol,
        workload=workload_by_name(workload_name),
        faults=parse_faults(faults),
        **kwargs,
    ))


class TestOptPExhaustive:
    @pytest.mark.parametrize("workload", BIG_WORKLOADS)
    def test_clean_on_every_interleaving(self, workload):
        r = run_exhaustive("optp", workload)
        assert r.ok, [str(v.finding) for v in r.violations]
        assert r.states >= 1000, (workload, r.states)
        assert not r.state_limit_hit
        # every explored path ran to quiescence: nothing stuck, nothing
        # cut off by the depth bound
        assert r.terminals["stuck"] == 0
        assert r.terminals["truncated"] == 0
        # Theorem 4 over the whole space: expect_optimal resolves to
        # True for optp, so ok already covers it; the counter agrees.
        assert r.expect_optimal is True
        assert r.unnecessary_delays == 0

    @pytest.mark.parametrize("workload", ["pair", "chain"])
    def test_clean_on_small_workloads(self, workload):
        r = run_exhaustive("optp", workload)
        assert r.ok and not r.state_limit_hit
        assert r.terminals["stuck"] == 0


class TestANBKHSafeButNotOptimal:
    def test_safe_on_fig3_history(self):
        r = run_exhaustive("anbkh", "fig3")
        assert r.ok, [str(v.finding) for v in r.violations]
        assert r.terminals["stuck"] == 0

    def test_false_causality_surfaces_by_exhaustion(self):
        """Some interleaving of the Figure 3 scripts delays a write
        whose causal past is already applied (Theorem 4's gap)."""
        r = run_exhaustive("anbkh", "fig3")
        assert r.unnecessary_delays > 0

    def test_flagged_when_held_to_optp_standard(self):
        r = run_exhaustive("anbkh", "chain", expect_optimal=True)
        assert not r.ok
        assert any(v.finding.kind == "optimality" for v in r.violations)

    def test_optp_strictly_fewer_delay_events(self):
        """Definition 5 ordering, summed over the whole interleaving
        space of the same workload."""
        r_optp = run_exhaustive("optp", "fig3")
        r_anbkh = run_exhaustive("anbkh", "fig3")
        assert r_optp.unnecessary_delays == 0
        assert r_anbkh.unnecessary_delays > r_optp.unnecessary_delays


class TestMutationSelfCheck:
    """The checker must catch planted bugs -- else it checks nothing."""

    @pytest.mark.parametrize("factory,expected_kind", [
        (BrokenOptP, "safety"),
        (BrokenANBKH, "safety"),
    ])
    def test_mutant_rejected_with_replayable_witness(
        self, factory, expected_kind
    ):
        config = CheckConfig(protocol=factory,
                             workload=workload_by_name("h1"),
                             stop_on_violation=True)
        r = check(config)
        assert not r.ok
        violation = r.violations[0]
        assert violation.finding.kind == expected_kind, str(violation.finding)

        # the witness minimizes and still reproduces deterministically
        minimal = minimize_witness(config, list(violation.choices))
        assert 0 < len(minimal) <= len(violation.choices)
        outcome = replay_path(config, minimal)
        assert any(f.kind == expected_kind for f in outcome.findings)
        # replay is deterministic: same path, same trace bytes
        again = replay_path(config, minimal)
        assert again.trace_jsonl == outcome.trace_jsonl

    def test_broken_optp_witness_is_short(self):
        """The h1 counterexample needs only a handful of steps --
        minimization must find one, not return a full-depth path."""
        config = CheckConfig(protocol=BrokenOptP,
                             workload=workload_by_name("h1"),
                             stop_on_violation=True)
        r = check(config)
        minimal = minimize_witness(config, list(r.violations[0].choices))
        assert len(minimal) <= 8, minimal


class TestFaultAdapters:
    def test_duplicates_with_dedup_are_harmless(self):
        r = run_exhaustive("optp", "pair", faults="dup:1")
        assert r.ok
        baseline = run_exhaustive("optp", "pair")
        assert r.states > baseline.states  # the adversary really ran

    def test_duplicates_without_dedup_are_caught(self):
        r = run_exhaustive("optp", "pair", faults="dup:1,nodedup")
        assert not r.ok

    def test_drop_with_retransmit_is_outcome_preserving(self):
        r = run_exhaustive("optp", "pair", faults="drop:1")
        assert r.ok
        assert r.terminals["stuck"] == 0

    def test_lost_message_is_a_liveness_violation(self):
        r = run_exhaustive("optp", "pair", faults="drop:1,noretransmit")
        assert not r.ok
        assert any(v.finding.kind == "liveness" for v in r.violations)
        assert r.terminals["stuck"] > 0


class TestWalkMode:
    """The fallback for state spaces exhaustion cannot cover."""

    @pytest.mark.parametrize("protocol", ["gossip-optp", "jimenez-token"])
    def test_timer_driven_protocols_clean_under_walks(self, protocol):
        r = check(CheckConfig(protocol=protocol,
                              workload=workload_by_name("pair"),
                              mode="walk", walks=32, seed=1))
        assert r.ok, [str(v.finding) for v in r.violations]

    def test_walk_finds_the_planted_bug_too(self):
        r = check(CheckConfig(protocol=BrokenANBKH,
                              workload=workload_by_name("h1"),
                              mode="walk", walks=64, seed=0))
        assert not r.ok


DIFF_SETTINGS = settings(max_examples=25, deadline=None,
                         suppress_health_check=[HealthCheck.too_slow])


def random_interleaving(protocol, workload, seed):
    """One seeded random maximal path through the transition system."""
    cluster = ControlledCluster(protocol, workload)
    rng = random.Random(seed)
    findings = list(cluster.bootstrap_findings)
    for _ in range(200):
        if cluster.status() != "running":
            break
        enabled = cluster.enabled()
        findings += cluster.execute(enabled[rng.randrange(len(enabled))])
    return cluster, findings


class TestTrackerDifferential:
    """The online tracker against the offline reference analyzers."""

    @DIFF_SETTINGS
    @given(workload=mck_workloads(), seed=st.integers(0, 999),
           protocol=st.sampled_from(["optp", "anbkh"]))
    def test_legality_matches_reference_checker(
        self, workload, seed, protocol
    ):
        cluster, findings = random_interleaving(protocol, workload, seed)
        report = check_causal_consistency(cluster.trace.to_history())
        tracker_legal = not any(f.kind == "legality" for f in findings)
        assert tracker_legal == report.consistent, (
            findings, report.summary())

    @DIFF_SETTINGS
    @given(workload=mck_workloads(), seed=st.integers(0, 999))
    def test_tracked_past_is_x_co_safe(self, workload, seed):
        """The tracker's per-write causal past must equal Definition
        4's X_co-safe -- the optimality check is only as good as this
        set."""
        cluster, _ = random_interleaving("optp", workload, seed)
        history = cluster.trace.to_history()
        for wid, past in cluster.tracker.past.items():
            assert past == x_co_safe(history, 0, wid), wid
