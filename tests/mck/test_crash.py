"""Crash-fault model checking: exhaustive crash/recover exploration,
crash-stop accounting, and the BrokenRecovery mutation self-check.

The crash adversary adds ``crash(p)`` / ``recover(p)`` transitions to
the interleaving space; recovery rebuilds the victim from its simulated
snapshot + WAL (``repro.durability.DurableLog``).  Clean protocols must
survive *every* placement of the crash with zero violations; a recovery
path that forgets the WAL tail (``losetail:N``) must be rejected with a
short replayable witness -- otherwise the crash checks check nothing.
"""

import pytest

from repro.mck import (
    CheckConfig,
    check,
    minimize_witness,
    parse_faults,
    workload_by_name,
)
from repro.mck.faults import NO_FAULTS, FaultSpec
from repro.mck.witness import replay_path


def run_exhaustive(protocol, workload_name, faults="none", **kwargs):
    return check(CheckConfig(
        protocol=protocol,
        workload=workload_by_name(workload_name),
        faults=parse_faults(faults),
        **kwargs,
    ))


class TestCrashRecovery:
    @pytest.mark.parametrize("workload", ["pair", "chain"])
    @pytest.mark.parametrize("protocol", ["optp", "anbkh"])
    def test_clean_under_crash_recover(self, protocol, workload):
        r = run_exhaustive(protocol, workload, faults="crash")
        assert r.ok, [str(v.finding) for v in r.violations]
        assert not r.state_limit_hit
        assert r.terminals["stuck"] == 0
        # the adversary really ran: crash placements multiply the space
        baseline = run_exhaustive(protocol, workload)
        assert r.states > baseline.states

    def test_pure_wal_replay_clean(self):
        """snap:0 disables snapshot folding -- recovery is a full WAL
        replay from the initial state on every explored path."""
        r = run_exhaustive("optp", "pair", faults="crash,snap:0")
        assert r.ok, [str(v.finding) for v in r.violations]
        assert r.terminals["stuck"] == 0

    def test_crash_composes_with_duplicates(self):
        """Crash + retransmission duplicates: the recovered replica's
        restored dedup guard must still drop replays."""
        r = run_exhaustive("optp", "pair", faults="crash,dup:1")
        assert r.ok, [str(v.finding) for v in r.violations]


class TestCrashStop:
    def test_survivors_quiesce_without_the_victim(self):
        r = run_exhaustive("optp", "pair", faults="crash,norecover")
        assert r.ok, [str(v.finding) for v in r.violations]
        assert r.terminals["stuck"] == 0

    def test_recover_disabled(self):
        from repro.mck import ControlledCluster
        cluster = ControlledCluster(
            "optp", workload_by_name("pair"),
            faults=parse_faults("crash,norecover"))
        cluster.execute(("crash", 0))
        assert not any(t[0] == "recover" for t in cluster.enabled())


class TestBrokenRecoveryMutation:
    """Self-check: a recovery that loses the WAL tail must be caught."""

    def _config(self):
        return CheckConfig(
            protocol="optp",
            workload=workload_by_name("pair"),
            faults=parse_faults("crash,losetail:1"),
            stop_on_violation=True,
        )

    def test_rejected_with_replayable_witness(self):
        config = self._config()
        r = check(config)
        assert not r.ok

        violation = r.violations[0]
        minimal = minimize_witness(config, list(violation.choices))
        assert 0 < len(minimal) <= len(violation.choices)
        assert any(t[0] == "crash" for t in minimal)
        assert any(t[0] == "recover" for t in minimal)
        outcome = replay_path(config, minimal)
        assert outcome.findings, "minimized witness must still reproduce"
        again = replay_path(config, minimal)
        assert again.trace_jsonl == outcome.trace_jsonl

    def test_witness_is_short(self):
        config = self._config()
        r = check(config)
        minimal = minimize_witness(config, list(r.violations[0].choices))
        assert len(minimal) <= 8, minimal


class TestCrashGuards:
    def test_snapshotless_protocol_rejected(self):
        from repro.mck import ControlledCluster
        with pytest.raises(ValueError, match="does not support snapshots"):
            ControlledCluster("gossip-optp", workload_by_name("pair"),
                              faults=parse_faults("crash"))

    def test_timer_protocol_rejected(self):
        """Timer firings are not journaled, so even a snapshot-capable
        protocol with timers is outside the crash model."""
        from repro.core.optp import OptPProtocol
        from repro.mck import ControlledCluster

        class TimeredOptP(OptPProtocol):
            timer_interval = 1.0

        with pytest.raises(ValueError, match="timer"):
            ControlledCluster(TimeredOptP, workload_by_name("pair"),
                              faults=parse_faults("crash"))


class TestFaultGrammar:
    @pytest.mark.parametrize("text,expected", [
        ("crash", FaultSpec(crash=1)),
        ("crash:2", FaultSpec(crash=2)),
        ("crash,norecover", FaultSpec(crash=1, recover=False)),
        ("crash,snap:0", FaultSpec(crash=1, snap_every=0)),
        ("crash,losetail:1", FaultSpec(crash=1, wal_lose_tail=1)),
        ("crash:1,dup:1", FaultSpec(crash=1, duplicate=1)),
        ("none", NO_FAULTS),
    ])
    def test_parse(self, text, expected):
        assert parse_faults(text) == expected

    @pytest.mark.parametrize("spec", [
        FaultSpec(crash=1),
        FaultSpec(crash=2, recover=False, snap_every=0),
        FaultSpec(crash=1, wal_lose_tail=3, snap_every=5),
    ])
    def test_dict_round_trip(self, spec):
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_negative_budgets_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(crash=-1)
        with pytest.raises(ValueError):
            FaultSpec(snap_every=-1)
        with pytest.raises(ValueError):
            FaultSpec(wal_lose_tail=-1)
