"""Parallel + cached model checking on the sweep substrate.

The contract is the same one the simulation sweeps pin: the verdicts
from ``jobs=N`` equal the serial reference by value, a warm cache
answers without exploring, and cache decoding is strict -- any schema
drift is a miss (re-explore), never a silently wrong verdict.
"""

import pytest

from repro.mck import CheckConfig, check, run_checks, workload_by_name
from repro.mck.parallel import (
    MCK_FINGERPRINT_PACKAGES,
    check_digest,
    execute_check_spec,
    verdict_from_dict,
)
from repro.sweep import RunCache
from repro.sweep.cache import FINGERPRINT_PACKAGES


def configs():
    return [
        CheckConfig(protocol=name, workload=workload_by_name(wl))
        for name, wl in (("optp", "pair"), ("optp", "chain"),
                         ("anbkh", "pair"))
    ]


class TestParity:
    def test_parallel_and_cached_match_serial(self, tmp_path):
        serial = [check(c).verdict_dict() for c in configs()]

        cache = RunCache(tmp_path)
        cold, cold_stats = run_checks(configs(), jobs=2, cache=cache)
        assert [r.verdict_dict() for r in cold] == serial
        assert cold_stats.cache_misses == 3 and cold_stats.cache_hits == 0

        warm, warm_stats = run_checks(configs(), jobs=1, cache=cache)
        assert [r.verdict_dict() for r in warm] == serial
        assert warm_stats.cache_hits == 3 and warm_stats.cache_misses == 0
        # cached verdicts carry no wall time by design
        assert all(r.wall == 0.0 for r in warm)

    def test_uncached_serial_path(self):
        results, stats = run_checks(configs()[:1])
        assert results[0].ok and stats.cache_hits == 0


class TestDigest:
    def test_digest_distinguishes_configs(self):
        a, b, c = configs()
        assert len({check_digest(a), check_digest(b), check_digest(c)}) == 3
        assert check_digest(a) == check_digest(configs()[0])

    def test_fingerprint_wraps_digest(self):
        a = configs()[0]
        assert check_digest(a) != check_digest(a, "deadbeef")

    def test_checker_code_is_fingerprinted(self):
        """A bug fix in repro.mck must invalidate cached verdicts."""
        assert "mck" in MCK_FINGERPRINT_PACKAGES
        assert set(FINGERPRINT_PACKAGES) < set(MCK_FINGERPRINT_PACKAGES)


class TestStrictDecode:
    def good(self):
        verdict, wall = execute_check_spec(configs()[0])
        assert wall > 0
        return verdict

    def test_round_trip(self):
        verdict = self.good()
        rebuilt = verdict_from_dict(verdict)
        assert rebuilt.verdict_dict() == verdict

    @pytest.mark.parametrize("mutate", [
        lambda d: {k: v for k, v in d.items() if k != "states"},
        lambda d: {**d, "extra": 1},
        lambda d: {**d, "terminals": {"quiescent": 1}},
        lambda d: {**d, "prunes": {"sleep": 0}},
        lambda d: [d],
    ])
    def test_schema_drift_raises(self, mutate):
        with pytest.raises(ValueError):
            verdict_from_dict(mutate(self.good()))

    def test_ok_flag_consistency_enforced(self):
        verdict = self.good()
        assert verdict["ok"]
        with pytest.raises(ValueError, match="inconsistent"):
            verdict_from_dict({**verdict, "ok": False})
