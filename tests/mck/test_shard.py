"""Sharded exhaustive checking: the parallel verdict is the serial one.

The shards partition the serial DFS recursion tree, so every counter
-- states, transitions, terminals, prunes, unnecessary delays,
violations seen -- and the *ordered* recorded-violation list must be
exactly equal to :func:`repro.mck.explorer.check`, for clean and
violating runs alike.  This is the count-parity contract the CLI's
``check --jobs N`` path and the CI parity job rely on.
"""

import pytest

from repro.mck import (
    CheckConfig,
    check,
    check_sharded,
    parse_faults,
    shardable,
    workload_by_name,
)
from repro.mck.shard import (
    _expand_frontier,
    execute_shard_spec,
    shard_digest,
)
from repro.sweep import RunCache

COUNTERS = ("states", "transitions", "terminals", "prunes",
            "violations_seen", "unnecessary_delays", "state_limit_hit")


def cfg(protocol="anbkh", workload="pair", faults="none", **kw):
    return CheckConfig(protocol=protocol,
                       workload=workload_by_name(workload),
                       faults=parse_faults(faults), **kw)


def assert_verdicts_equal(serial, sharded):
    for field in COUNTERS:
        assert getattr(serial, field) == getattr(sharded, field), field
    assert ([v.to_dict() for v in serial.violations]
            == [v.to_dict() for v in sharded.violations])
    assert serial.verdict_dict() == sharded.verdict_dict()


class TestCountParity:
    @pytest.mark.parametrize("protocol,workload", [
        ("optp", "pair"),
        ("optp", "chain"),
        ("anbkh", "pair"),
        ("sequencer", "chain"),
    ])
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_clean_runs(self, protocol, workload, jobs):
        config = cfg(protocol, workload)
        serial = check(config)
        sharded, stats = check_sharded(config, jobs=jobs)
        assert serial.ok and sharded.ok
        assert_verdicts_equal(serial, sharded)

    def test_unnecessary_delay_counting(self):
        """ANBKH's false-causality delays are split across shards and
        must re-sum exactly (triangle produces hundreds)."""
        config = cfg("anbkh", "triangle")
        serial = check(config)
        assert serial.unnecessary_delays > 0
        sharded, _ = check_sharded(config, jobs=2)
        assert_verdicts_equal(serial, sharded)

    def test_violating_run_preserves_order(self):
        """Dropped messages without retransmission violate liveness on
        many branches; the merged violation list must match the serial
        one entry for entry, in DFS order."""
        config = cfg("optp", "pair", faults="drop:1,noretransmit",
                     max_depth=12)
        serial = check(config)
        assert serial.violations_seen > 0
        sharded, _ = check_sharded(config, jobs=2)
        assert_verdicts_equal(serial, sharded)

    def test_fault_injection_parity(self):
        config = cfg("anbkh", "h1", faults="dup:1", max_depth=8)
        serial = check(config)
        sharded, _ = check_sharded(config, jobs=2)
        assert_verdicts_equal(serial, sharded)


class TestEligibility:
    def test_shardable_predicate(self):
        base = cfg()
        assert shardable(base, jobs=2)
        assert not shardable(base, jobs=1)
        assert not shardable(cfg(mode="walk", walks=4), jobs=2)
        assert not shardable(
            cfg(stop_on_violation=True), jobs=2)

    def test_ineligible_configs_fall_back_to_serial(self):
        config = cfg(mode="walk", walks=8)
        serial = check(config)
        sharded, stats = check_sharded(config, jobs=2)
        assert_verdicts_equal(serial, sharded)
        assert stats.jobs == 1  # went through the serial cached path

    def test_tiny_space_is_finished_by_the_expansion(self):
        """When the frontier target is unreachable (more workers than
        the bounded tree can feed), the expansion deepens past
        ``max_depth``, exhausts the space itself, and no pool is spun
        up -- the interior result is the verdict."""
        config = cfg("optp", "h1", max_depth=2)
        serial = check(config)
        sharded, stats = check_sharded(config, jobs=64)
        assert_verdicts_equal(serial, sharded)
        assert stats.runs == 0  # nothing was dispatched


class TestCache:
    def test_shard_results_are_cached(self, tmp_path):
        config = cfg("anbkh", "pair")
        cache = RunCache(tmp_path)
        cold, cold_stats = check_sharded(config, jobs=2, cache=cache)
        assert cold_stats.cache_misses > 0 and cold_stats.cache_hits == 0
        warm, warm_stats = check_sharded(config, jobs=2, cache=cache)
        assert warm_stats.cache_misses == 0
        assert warm_stats.cache_hits == cold_stats.cache_misses
        assert cold.verdict_dict() == warm.verdict_dict()


class TestShardInternals:
    def test_expansion_partitions_the_tree(self):
        """Replaying every emitted shard serially and adding the
        interior must reproduce the serial state count -- the shards
        partition the recursion tree with no overlap and no gaps."""
        config = cfg("optp", "pair")
        exp = _expand_frontier(config, target=6)
        assert len(exp.frontier) >= 6
        from repro.mck.witness import config_to_dict

        doc = config_to_dict(config)
        total = exp.result.states
        for shard in exp.frontier:
            verdict, _wall = execute_shard_spec(dict(shard, config=doc))
            total += verdict["states"]
        assert total == check(config).states

    def test_digest_distinguishes_shards(self):
        config = cfg("optp", "pair")
        exp = _expand_frontier(config, target=6)
        from repro.mck.witness import config_to_dict

        doc = config_to_dict(config)
        digests = {shard_digest(dict(s, config=doc))
                   for s in exp.frontier}
        assert len(digests) == len(exp.frontier)
        one = dict(exp.frontier[0], config=doc)
        assert shard_digest(one) != shard_digest(one, "deadbeef")
