"""Unit tests for the checker's building blocks.

The acceptance suite (``test_checker.py``) exercises the happy paths
end to end; this file pins the edges -- fault-spec parsing and
validation, workload plumbing, exploration budgets, obs export -- and
drives :class:`~repro.mck.cluster.ControlledCluster` by hand along
interleavings the explorer prunes below the first violation, so every
invariant *kind* (legality both ways, convergence, isolation,
stuck-message) is shown to actually fire.
"""

import pytest

from repro.mck import (
    CheckConfig,
    ControlledCluster,
    FaultSpec,
    MckWorkload,
    check,
    parse_faults,
    workload_by_name,
    workload_from_dict,
    workload_from_schedule,
)
from repro.obs import Obs
from repro.workloads import WorkloadConfig, random_schedule
from repro.workloads.ops import ReadOp, WriteOp

from tests.mck.mutants import BrokenANBKH, LeakyOptP


class TestFaultSpec:
    def test_parse_tokens(self):
        spec = parse_faults("dup:2,drop:1,noretransmit,nodedup")
        assert spec.duplicate == 2 and spec.drop == 1
        assert spec.retransmit is False and spec.dedup is False
        assert spec.any
        assert not parse_faults("none").any

    def test_parse_rejects_unknown_token(self):
        with pytest.raises(ValueError, match="unknown fault token"):
            parse_faults("dup:1,chaos")

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="budgets"):
            FaultSpec(duplicate=-1)

    def test_dict_round_trip_is_strict(self):
        spec = parse_faults("dup:1,dedup")
        assert FaultSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ValueError, match="unknown fault fields"):
            FaultSpec.from_dict({"duplicate": 1, "latency": 3})


class TestWorkloads:
    def test_counts(self):
        wl = workload_by_name("h1")
        assert wl.n_processes == len(wl.scripts)
        assert wl.n_ops == sum(len(s) for s in wl.scripts)
        assert 0 < wl.n_writes < wl.n_ops  # h1 mixes writes and reads

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            workload_by_name("h99")

    def test_from_dict_rejects_unknown_op(self):
        doc = workload_by_name("pair").to_dict()
        doc["scripts"][0][0] = ["x", "boom"]
        with pytest.raises(ValueError, match="unknown op kind"):
            workload_from_dict(doc)

    def test_from_schedule_strips_times(self):
        cfg = WorkloadConfig(n_processes=3, ops_per_process=5,
                             n_variables=2, write_fraction=0.5, seed=3)
        sched = random_schedule(cfg)
        wl = workload_from_schedule("rand", 3, sched)
        assert wl.n_processes == 3
        assert wl.n_ops == sched.n_ops

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            CheckConfig(protocol="optp",
                        workload=workload_by_name("pair"),
                        mode="bfs")


class TestBudgets:
    def test_state_limit_reported_not_silently_ignored(self):
        r = check(CheckConfig(protocol="optp",
                              workload=workload_by_name("h1"),
                              max_states=50))
        assert r.state_limit_hit
        assert r.states <= 51  # stopped at the cap, not at quiescence

    def test_depth_bound_counts_truncated_paths(self):
        r = check(CheckConfig(protocol="optp",
                              workload=workload_by_name("pair"),
                              max_depth=3))
        assert r.terminals["truncated"] > 0

    def test_walk_mode_respects_depth_bound(self):
        r = check(CheckConfig(protocol="optp",
                              workload=workload_by_name("pair"),
                              mode="walk", walks=4, seed=2, max_depth=2))
        assert r.terminals["truncated"] == 4


class TestObsExport:
    def test_counters_exported_when_enabled(self):
        obs = Obs.recording()
        r = check(CheckConfig(protocol="optp",
                              workload=workload_by_name("pair")),
                  obs=obs)
        reg = obs.registry
        assert reg.total("mck.states") == r.states
        assert reg.total("mck.transitions") == r.transitions
        assert reg.total("mck.terminals") == sum(r.terminals.values())
        assert reg.value("mck.prunes", kind="sleep",
                         protocol=r.protocol_name,
                         workload=r.workload_name) == r.prunes["sleep"]


#: p0 writes x=a; p2 reads it and writes x=b (so a ->co b); p1 reads
#: twice.  A protocol that applies b before a lets p1 observe b, then
#: a -- the stale read the legality invariant must flag.
STALE_READ = MckWorkload(name="stale-read", scripts=(
    (WriteOp("x", "a"),),
    (ReadOp("x"), ReadOp("x")),
    (ReadOp("x"), WriteOp("x", "b")),
))

#: Same shape split over two variables: p1 learns of the x-write only
#: through the y-write's causal past, then reads x before it arrived.
BOTTOM_READ = MckWorkload(name="bottom-read", scripts=(
    (WriteOp("x", "a"),),
    (ReadOp("y"), ReadOp("x")),
    (ReadOp("x"), WriteOp("y", "b")),
))


def drive(cluster, path):
    findings = list(cluster.bootstrap_findings)
    for t in path:
        assert t in cluster.enabled(), (t, cluster.enabled())
        findings += cluster.execute(t)
    return findings


class TestInvariantKindsFire:
    """Hand-driven interleavings for the finding kinds the explorer
    stops short of (it does not descend below a violating state)."""

    def test_stale_read_is_a_legality_violation(self):
        c = ControlledCluster(BrokenANBKH, STALE_READ)
        findings = drive(c, [
            ("op", 0), ("deliver", "u:0.1>2"),       # p2 applies a
            ("op", 2), ("op", 2),                    # reads a, writes b
            ("deliver", "u:2.1>1"), ("op", 1),       # p1 applies b, reads b
            ("deliver", "u:0.0>1"), ("op", 1),       # a overtakes; stale read
        ])
        kinds = [f.kind for f in findings]
        assert "safety" in kinds
        assert "legality" in kinds
        legality = next(f for f in findings if f.kind == "legality")
        assert "interposed" in legality.detail

    def test_bottom_read_is_a_legality_violation(self):
        c = ControlledCluster(BrokenANBKH, BOTTOM_READ)
        findings = drive(c, [
            ("op", 0), ("deliver", "u:0.1>2"),
            ("op", 2), ("op", 2),                    # p2: reads a, writes y=b
            ("deliver", "u:2.1>1"),                  # p1 applies b without a
            ("op", 1),                               # reads y=b: a joins ctx
            ("op", 1),                               # reads x -> BOTTOM
        ])
        legality = [f for f in findings if f.kind == "legality"]
        assert legality and "BOTTOM" in legality[0].detail

    def test_causally_ordered_divergence_is_a_convergence_violation(self):
        c = ControlledCluster(BrokenANBKH, STALE_READ)
        drive(c, [
            ("op", 0), ("deliver", "u:0.1>2"), ("op", 2), ("op", 2),
            ("deliver", "u:2.1>1"), ("op", 1), ("deliver", "u:0.0>1"),
            ("op", 1),
            ("deliver", "u:2.0>0"),                  # p0 applies b
        ])
        # p1's store settled on a although a ->co b; p0/p2 hold b.
        assert c.status() == "quiescent"
        kinds = [f.kind for f in c.terminal_findings("quiescent")]
        assert "convergence" in kinds

    def test_liveness_findings_name_every_missing_apply(self):
        c = ControlledCluster("optp", workload_by_name("pair"))
        drive(c, [("op", 0), ("op", 1)])             # nothing delivered
        findings = c.tracker.liveness_findings(c.writes)
        assert len(findings) == 2                    # one per missing apply
        assert all(f.kind == "liveness" for f in findings)

    def test_wedged_duplicate_is_stuck_at_quiescence(self):
        c = ControlledCluster("optp", workload_by_name("pair"),
                              faults=parse_faults("dup:1,nodedup"))
        drive(c, [
            ("op", 0),
            ("dup", "u:0.0>1"),                      # clone while pending
            ("deliver", "u:0.0>1"),                  # original applies
            ("deliver", "d:u:0.0>1"),                # duplicate buffers
            ("op", 0), ("op", 0),
            ("op", 1), ("deliver", "u:1.0>0"),
            ("op", 1), ("op", 1),
        ])
        # apply accounting is satisfied; only the wedged duplicate is
        # left behind, undeliverable forever
        assert c.status() == "quiescent"
        kinds = [f.kind for f in c.terminal_findings("quiescent")]
        assert "stuck_message" in kinds


class TestIsolationInvariant:
    """The payload-immutability contract, checked structurally."""

    def test_mutable_payload_flagged_at_send(self):
        c = ControlledCluster(LeakyOptP, workload_by_name("pair"))
        findings = drive(c, [("op", 0)])
        isolation = [f for f in findings if f.kind == "isolation"]
        assert isolation and "mutable" in isolation[0].detail

    def test_mutation_in_flight_flagged_at_delivery(self):
        wl = MckWorkload(name="two-writes", scripts=(
            (WriteOp("x", 1), WriteOp("x", 2)), (),
        ))
        c = ControlledCluster(LeakyOptP, wl)
        drive(c, [("op", 0), ("op", 0)])     # 2nd write mutates 1st payload
        findings = c.execute(("deliver", "u:0.0>1"))
        assert any(f.kind == "isolation" and "mutated" in f.detail
                   for f in findings)

    def test_mutated_pending_message_flagged_at_terminal(self):
        wl = MckWorkload(name="two-writes", scripts=(
            (WriteOp("x", 1), WriteOp("x", 2)), (),
        ))
        c = ControlledCluster(LeakyOptP, wl)
        drive(c, [("op", 0), ("op", 0)])
        findings = c.terminal_findings("stuck")
        assert any(f.kind == "isolation" and "mutated after send" in f.detail
                   for f in findings)

    def test_checker_rejects_the_leaky_protocol(self):
        r = check(CheckConfig(protocol=LeakyOptP,
                              workload=workload_by_name("pair"),
                              stop_on_violation=True))
        assert not r.ok
        assert r.violations[0].finding.kind == "isolation"
