"""Flat-state differential tests: the struct-of-arrays backend must be
*observationally identical* to the scalar oracle.

The flat backend (:mod:`repro.core.flatstate`) changes how protocol
vectors are stored and how activation predicates are evaluated, never
what gets applied when: for every protocol in the registry (and
partial replication, which needs its own factory), a seeded workload
run under ``state_backend="scalar"`` and ``state_backend="flat"`` must
produce byte-identical serialized traces -- same events, same order,
same times, same state snapshots -- and identical delay audits.

Protocols that do not opt in (ws-receiver, token, gossip) resolve
``"flat"`` back to scalar transparently; the comparison is trivially
exact there but still runs to pin the fallback's transparency.

The reverse-chain block replays the adversarial topology of
``test_scheduler_repark`` -- a causal chain delivered to an observer in
every permutation -- because out-of-order chains are exactly where the
flat scheduler's counting-wakeup bookkeeping can drift from the
scalar classify/park/wake cycle.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import check_run
from repro.protocols import PROTOCOLS
from repro.protocols.partial import ReplicationMap, partial_factory
from repro.sim import SeededLatency, run_schedule
from repro.sim.serialize import trace_to_jsonl
from repro.workloads import WorkloadConfig, random_schedule
from repro.workloads.generators import random_partial_schedule

from tests.integration.test_scheduler_repark import (
    SENDS,
    chain_schedule,
    scripted,
)
from tests.strategies import latency_seeds, workload_configs

#: Protocols that opt into the flat backend; the rest must resolve
#: ``"auto"``/``"flat"`` back to the scalar path.
FLAT_PROTOCOLS = {"optp", "anbkh", "sequencer"}


def _cfg(seed, n=5):
    return WorkloadConfig(n_processes=n, ops_per_process=14,
                          n_variables=4, write_fraction=0.6, seed=seed)


def _run_both(factory, n, sched, seed, **kwargs):
    results = {}
    for backend in ("scalar", "flat"):
        latency = SeededLatency(seed, dist="exponential", mean=2.5)
        results[backend] = run_schedule(
            factory, n, sched, latency=latency,
            state_backend=backend, **kwargs)
    return results["scalar"], results["flat"]


def assert_observationally_identical(r_scalar, r_flat):
    # Strongest check first: the serialized traces are byte-identical,
    # covering event order, timestamps, buffer/apply/discard events and
    # per-event protocol state snapshots.
    assert trace_to_jsonl(r_scalar.trace) == trace_to_jsonl(r_flat.trace)
    assert r_scalar.stores == r_flat.stores
    assert r_scalar.messages_sent == r_flat.messages_sent
    assert r_scalar.write_delays == r_flat.write_delays
    rep_s, rep_f = check_run(r_scalar), check_run(r_flat)
    assert rep_s.ok == rep_f.ok
    assert rep_s.total_delays == rep_f.total_delays
    assert rep_s.unnecessary_delays == rep_f.unnecessary_delays


class TestRegistryProtocols:
    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_flat_matches_scalar(self, name, seed):
        sched = random_schedule(_cfg(seed))
        r_scalar, r_flat = _run_both(PROTOCOLS[name], 5, sched, seed)
        assert_observationally_identical(r_scalar, r_flat)

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_backend_resolution_matches_registry_split(self, name):
        proto = PROTOCOLS[name](0, 4)
        assert type(proto).supports_flat_state == (
            name in FLAT_PROTOCOLS), name

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_auto_resolution_is_visible_on_the_cluster(self, name):
        from repro.sim import SimCluster

        cluster = SimCluster(PROTOCOLS[name], 4)
        expected = "flat" if name in FLAT_PROTOCOLS else "scalar"
        assert cluster.state_backend == expected

    def test_forced_scheduler_mode_pins_auto_to_scalar(self):
        """An explicit scalar scheduler request must actually run that
        scheduler -- "auto" must not silently swap in the flat one
        (regression: test_scheduler_repark's counters)."""
        from repro.sim import SimCluster

        cluster = SimCluster(PROTOCOLS["optp"], 4, scheduler="indexed")
        assert cluster.state_backend == "scalar"
        forced = SimCluster(PROTOCOLS["optp"], 4, scheduler="indexed",
                            state_backend="flat")
        assert forced.state_backend == "flat"


class TestReverseChain:
    """Every delivery permutation of the causal chain a -> b -> c at
    the observer, including the full reverse that forces multi-key
    parks and cascaded wakeups in the flat scheduler."""

    @pytest.mark.parametrize(
        "order", list(itertools.permutations(sorted(SENDS))),
        ids=lambda o: "-".join(f"p{w.process}" for w in o),
    )
    def test_every_delivery_order_matches_scalar(self, order):
        results = {}
        for backend in ("scalar", "flat"):
            results[backend] = run_schedule(
                "optp", 4, chain_schedule(), latency=scripted(order),
                state_backend=backend, record_state=True)
        assert_observationally_identical(results["scalar"],
                                         results["flat"])
        # the chain fully applies everywhere under both backends
        assert all(len(s) == 3 for s in results["flat"].stores)


class TestRandomizedParity:
    """Hypothesis widens the seed grid above: flat == scalar on
    arbitrary workload shapes, not just the pinned configurations."""

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(cfg=workload_configs(max_processes=5, max_ops=10),
           name=st.sampled_from(sorted(FLAT_PROTOCOLS)),
           lseed=latency_seeds)
    def test_flat_matches_scalar_on_random_workloads(
        self, cfg, name, lseed
    ):
        sched = random_schedule(cfg)
        r_scalar, r_flat = _run_both(
            PROTOCOLS[name], cfg.n_processes, sched, lseed)
        assert_observationally_identical(r_scalar, r_flat)


class TestPartialReplication:
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("k", [2, 3])
    def test_round_robin_map(self, seed, k):
        cfg = _cfg(seed, n=4)
        variables = [f"x{i}" for i in range(cfg.n_variables)]
        rmap = ReplicationMap.round_robin(variables, cfg.n_processes, k)
        sched = random_partial_schedule(cfg, rmap)
        r_scalar, r_flat = _run_both(
            partial_factory(rmap), cfg.n_processes, sched, seed)
        assert_observationally_identical(r_scalar, r_flat)

    def test_full_map(self):
        cfg = _cfg(7, n=4)
        variables = [f"x{i}" for i in range(cfg.n_variables)]
        rmap = ReplicationMap.full(variables, cfg.n_processes)
        sched = random_partial_schedule(cfg, rmap)
        r_scalar, r_flat = _run_both(
            partial_factory(rmap), cfg.n_processes, sched, 7)
        assert_observationally_identical(r_scalar, r_flat)


class TestFaultKnobs:
    """Duplicates exercise the flat scheduler's dead-park (exact-match
    pivot) path; dedup'd duplicates exercise the node-level guard.
    Parity must survive both."""

    @pytest.mark.parametrize("name", sorted(FLAT_PROTOCOLS))
    def test_duplicates_with_dedup(self, name):
        sched = random_schedule(_cfg(11))
        r_scalar, r_flat = _run_both(
            PROTOCOLS[name], 5, sched, 11,
            duplicate_prob=0.3, dedup=True)
        assert_observationally_identical(r_scalar, r_flat)

    def test_duplicates_without_dedup_dead_park_identically(self):
        # Without dedup, duplicate updates reach the scheduler and must
        # be dead-parked by the flat pivot recheck exactly where the
        # scalar classifier discards them; the run never quiesces, so
        # compare at a deadline.
        sched = random_schedule(_cfg(3))
        r_scalar, r_flat = _run_both(
            PROTOCOLS["anbkh"], 5, sched, 3,
            duplicate_prob=0.3, deadline=500.0)
        assert_observationally_identical(r_scalar, r_flat)
