"""Smoke tests: every shipped example must run green end to end.

Each example self-verifies (asserts on its own run), so executing it is
a real integration test, not just an import check.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = [
    ("quickstart.py", []),
    ("collaborative_editing.py", ["3"]),
    ("social_feed.py", []),
    ("bank_accounts.py", []),
    ("edge_replication.py", []),
    ("kv_store.py", []),
    ("asyncio_cluster.py", ["2"]),
    ("protocol_comparison.py", ["--quick"]),
]


@pytest.mark.parametrize("script,args", EXAMPLES,
                         ids=[e[0] for e in EXAMPLES])
def test_example_runs_clean(script, args):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, (
        f"{script} failed:\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{script} produced no output"
