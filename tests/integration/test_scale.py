"""Scale tests: bigger runs through the full verified pipeline.

Kept at "a second or two" scale so the default suite stays fast; the
benchmark harness covers the larger sweeps.
"""

import pytest

from repro.analysis import check_run
from repro.sim import SeededLatency, run_schedule
from repro.workloads import WorkloadConfig, chain_programs, random_schedule


class TestScale:
    def test_sixteen_processes(self):
        cfg = WorkloadConfig(n_processes=16, ops_per_process=10,
                             n_variables=8, write_fraction=0.5, seed=9)
        r = run_schedule("optp", 16, random_schedule(cfg),
                         latency=SeededLatency(9, dist="exponential", mean=2.0))
        report = check_run(r)
        assert report.ok, report.summary()
        assert not report.unnecessary_delays
        # 16 procs x 10 ops x ~0.5 writes -> ~80 writes, 1200 applies
        assert r.remote_applies == r.writes_issued * 15

    def test_many_operations_single_run(self):
        cfg = WorkloadConfig(n_processes=4, ops_per_process=150,
                             n_variables=6, write_fraction=0.6, seed=13)
        r = run_schedule("optp", 4, random_schedule(cfg),
                         latency=SeededLatency(13))
        report = check_run(r)
        assert report.ok
        assert r.writes_issued > 300

    def test_deep_causal_chain(self):
        """Multi-round relay: ->co chains dozens deep, every hop checked."""
        from repro.model.causality_graph import WriteCausalityGraph
        from repro.sim import ConstantLatency, run_programs

        programs = chain_programs(5, rounds=4)
        r = run_programs("optp", 5, programs, latency=ConstantLatency(0.4))
        report = check_run(r)
        assert report.ok
        g = WriteCausalityGraph.from_history(r.history)
        assert g.longest_chain_length() >= 4 * 5 - 1

    def test_all_protocols_mid_scale(self):
        cfg = WorkloadConfig(n_processes=8, ops_per_process=20,
                             write_fraction=0.7, seed=21)
        sched = random_schedule(cfg)
        delays = {}
        for proto in ("optp", "anbkh", "ws-receiver", "jimenez-token",
                      "sequencer"):
            r = run_schedule(proto, 8, sched,
                             latency=SeededLatency(21, dist="exponential",
                                                   mean=1.5))
            report = check_run(r)
            assert report.ok, (proto, report.summary())
            delays[proto] = report.total_delays
        assert delays["optp"] <= delays["anbkh"]
        assert delays["ws-receiver"] <= delays["optp"]
        assert delays["sequencer"] >= delays["optp"]
