"""Flat-backend observability parity.

Two commitments, stacked on top of the flat/scalar *trace* parity of
``test_flatstate_differential``:

1. **Span parity** -- with recording obs armed, the flat scheduler must
   report the same message lifecycles as the indexed scalar scheduler:
   same waits, same dep order within each wait sequence (the pivot-first
   ordering pinned in ``FlatScheduler.offer``), same apply/discard
   times.  Telemetry is only as trustworthy as this equivalence.

2. **Byte identity with obs disabled** -- the pinned sha256 digests
   assert the flat backend's disabled-obs runs produce exactly the
   traces they produced when this PR landed, and that arming obs
   changes no trace bytes (telemetry never perturbs the run).
"""

import hashlib
import itertools

import pytest

from repro.obs import Obs
from repro.protocols import PROTOCOLS
from repro.sim import SeededLatency, run_schedule
from repro.sim.serialize import trace_to_jsonl
from repro.workloads import WorkloadConfig, random_schedule

from tests.integration.test_flatstate_differential import FLAT_PROTOCOLS
from tests.integration.test_scheduler_repark import (
    SENDS,
    chain_schedule,
    scripted,
)


def _cfg(seed, n=5):
    return WorkloadConfig(n_processes=n, ops_per_process=14,
                          n_variables=4, write_fraction=0.6, seed=seed)


def _run(name, n, sched, seed, *, backend, obs=None, **kwargs):
    if backend == "scalar":
        kwargs.setdefault("scheduler", "indexed")
    latency = SeededLatency(seed, dist="exponential", mean=2.5)
    if obs is None:
        obs = Obs.recording()
    result = run_schedule(PROTOCOLS[name], n, sched, latency=latency,
                          state_backend=backend, obs=obs, **kwargs)
    return result


def normalized_spans(result):
    """Span lifecycles as comparable tuples.  Wait intervals keep their
    recorded order: the flat scheduler owes the indexed scheduler's dep
    sequence, not just the same set."""
    return sorted(
        (s.process, (s.wid.process, s.wid.seq), s.sender, str(s.variable),
         s.send_time, s.receipt_time, s.apply_time, s.discard_time,
         tuple((w.start, w.dep, w.end) for w in s.waits))
        for s in result.spans
    )


def assert_span_parity(r_scalar, r_flat):
    assert normalized_spans(r_scalar) == normalized_spans(r_flat)
    assert trace_to_jsonl(r_scalar.trace) == trace_to_jsonl(r_flat.trace)


class TestSpanParity:
    @pytest.mark.parametrize("name", sorted(FLAT_PROTOCOLS))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_workloads(self, name, seed):
        sched = random_schedule(_cfg(seed))
        r_scalar = _run(name, 5, sched, seed, backend="scalar")
        r_flat = _run(name, 5, sched, seed, backend="flat")
        assert_span_parity(r_scalar, r_flat)
        # the workloads actually exercise buffering, not just sends
        assert any(s.waits for s in r_flat.spans)

    @pytest.mark.parametrize(
        "order", list(itertools.permutations(sorted(SENDS))),
        ids=lambda o: "-".join(f"p{w.process}" for w in o),
    )
    def test_reverse_chain_wait_sequences(self, order):
        """Out-of-order chains force multi-key parks and reparks: the
        flat head-advance must report the same wait-interval sequences
        as the indexed scheduler's classify/park/wake cycle."""
        results = {}
        for backend in ("scalar", "flat"):
            obs = Obs.recording()
            kwargs = {"scheduler": "indexed"} if backend == "scalar" else {}
            results[backend] = run_schedule(
                "optp", 4, chain_schedule(), latency=scripted(order),
                state_backend=backend, record_state=True, obs=obs,
                **kwargs)
        assert_span_parity(results["scalar"], results["flat"])

    @pytest.mark.parametrize("name", sorted(FLAT_PROTOCOLS))
    def test_duplicates_with_dedup(self, name):
        sched = random_schedule(_cfg(11))
        r_scalar = _run(name, 5, sched, 11, backend="scalar",
                        duplicate_prob=0.3, dedup=True)
        r_flat = _run(name, 5, sched, 11, backend="flat",
                      duplicate_prob=0.3, dedup=True)
        assert_span_parity(r_scalar, r_flat)

    def test_duplicates_without_dedup_dead_park_spans(self):
        """Dead-parked duplicates wedge forever: without dedup the
        duplicate's dep-less open wait lands on the original's span
        (same (process, wid) key), and both backends must report it
        identically at the comparison deadline."""
        sched = random_schedule(_cfg(3))
        r_scalar = _run("anbkh", 5, sched, 3, backend="scalar",
                        duplicate_prob=0.3, deadline=500.0)
        r_flat = _run("anbkh", 5, sched, 3, backend="flat",
                      duplicate_prob=0.3, deadline=500.0)
        assert_span_parity(r_scalar, r_flat)
        wedged = [s for s in r_flat.spans
                  if s.waits and s.waits[-1].dep is None
                  and s.waits[-1].end is None]
        assert wedged  # the scenario actually produced dead-parks


def _digest(name, seed, obs):
    sched = random_schedule(_cfg(seed))
    result = _run(name, 5, sched, seed, backend="flat", obs=obs)
    return hashlib.sha256(
        trace_to_jsonl(result.trace).encode()).hexdigest()


#: sha256(trace_to_jsonl(...)) of the disabled-obs flat runs, pinned at
#: the PR that instrumented the flat backend.  A digest drift means the
#: obs wiring changed scheduling behaviour -- investigate, never repin
#: casually.
PINNED_DIGESTS = {
    ("anbkh", 0):
        "e9a466f5ef662b059c317b36c91c2c87ec60d2d82304c65a2cd9d50985b14513",
    ("anbkh", 1):
        "2174d433265eacce9a92c6e3ec85ec1ec1d0df3304bb016db38ba930b5287056",
    ("optp", 0):
        "8ca9f50e23f0e18025d30864c4744d5bf121be1dada9c98b478b9ba4c8f84350",
    ("optp", 1):
        "82541a1aab949a910cd5bfa6a5227ce6447fc993497c2623cafe8be6ad74feb3",
    ("sequencer", 0):
        "a45503e1018caad7cff2a0263a2f8057ee50ab4419c30fa0f7fe78f7c15a060b",
    ("sequencer", 1):
        "74dcfd37cbbd37937c4e6ff3740e0d18f854168e32e4bdaf948e890044705b4f",
}


class TestByteIdentity:
    @pytest.mark.parametrize("name,seed", sorted(PINNED_DIGESTS))
    def test_disabled_obs_digest_pinned(self, name, seed):
        assert _digest(name, seed, Obs()) == PINNED_DIGESTS[(name, seed)]

    @pytest.mark.parametrize("name,seed", sorted(PINNED_DIGESTS))
    def test_enabled_obs_same_bytes(self, name, seed):
        """Arming spans + journal changes zero trace bytes."""
        assert _digest(name, seed, Obs.recording(journal=True)) \
            == PINNED_DIGESTS[(name, seed)]
