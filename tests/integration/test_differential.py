"""Differential tests: independent implementations must coincide where
the theory says they coincide.

- Partial replication with a FULL map is definitionally OptP with
  unicast fan-out: on identical open-loop schedules with per-write
  seeded latencies, the two implementations must produce the same
  observed history and the same delay count.
- The WS-receiver protocol degenerates to OptP whenever no overwrite
  fires: zero skips implies identical delays and histories.
"""

import pytest

from repro.analysis import check_run
from repro.protocols.partial import ReplicationMap, partial_factory
from repro.sim import SeededLatency, run_schedule
from repro.workloads import WorkloadConfig, random_schedule


def histories_equal(h1, h2) -> bool:
    return str(h1) == str(h2)


class TestPartialFullMapEqualsOptP:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_same_history_and_delays(self, seed):
        n, m = 4, 4
        cfg = WorkloadConfig(n_processes=n, ops_per_process=12,
                             n_variables=m, write_fraction=0.6, seed=seed)
        sched = random_schedule(cfg)
        latency = SeededLatency(seed, dist="exponential", mean=2.0)
        rmap = ReplicationMap.full([f"x{i}" for i in range(m)], n)

        r_optp = run_schedule("optp", n, sched, latency=latency)
        r_part = run_schedule(partial_factory(rmap), n, sched,
                              latency=latency)
        rep_o, rep_p = check_run(r_optp), check_run(r_part)
        assert rep_o.ok and rep_p.ok
        assert histories_equal(r_optp.history, r_part.history)
        assert rep_o.total_delays == rep_p.total_delays
        assert r_optp.messages_sent == r_part.messages_sent
        # apply orders coincide at every replica
        for k in range(n):
            assert (r_optp.trace.apply_order(k)
                    == r_part.trace.apply_order(k)), k


class TestWSReceiverDegeneratesToOptP:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_no_skips_implies_identical_behaviour(self, seed):
        cfg = WorkloadConfig(n_processes=4, ops_per_process=12,
                             n_variables=6, write_fraction=0.4, seed=seed)
        sched = random_schedule(cfg)
        latency = SeededLatency(seed, dist="exponential", mean=1.0)
        r_ws = run_schedule("ws-receiver", 4, sched, latency=latency)
        r_optp = run_schedule("optp", 4, sched, latency=latency)
        if r_ws.stat_total("skipped") > 0:
            pytest.skip("this seed produced overwrites; not the degenerate case")
        assert histories_equal(r_ws.history, r_optp.history)
        assert r_ws.write_delays == r_optp.write_delays
        for k in range(4):
            assert r_ws.trace.apply_order(k) == r_optp.trace.apply_order(k)


class TestGossipConvergesToSameStores:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_final_stores_match_broadcast_optp(self, seed):
        """Different propagation, same quiescent state: for variables
        whose writes are ->co-totally-ordered, gossip and broadcast
        converge to the same final write."""
        cfg = WorkloadConfig(n_processes=4, ops_per_process=10,
                             n_variables=3, write_fraction=0.6, seed=seed)
        sched = random_schedule(cfg)
        latency = SeededLatency(seed, dist="exponential", mean=0.8)
        r_b = run_schedule("optp", 4, sched, latency=latency)
        r_g = run_schedule("gossip-optp", 4, sched, latency=latency)
        co = r_b.history.causal_order
        by_var = {}
        for w in r_b.history.writes():
            by_var.setdefault(w.variable, []).append(w)
        for var, writes in by_var.items():
            total = all(
                co.precedes(a, b) or co.precedes(b, a)
                for i, a in enumerate(writes) for b in writes[i + 1:]
            )
            if not total:
                continue
            final_b = {s[var][1] for s in r_b.stores}
            final_g = {s[var][1] for s in r_g.stores}
            assert len(final_b) == 1
            # gossip's history may order concurrent-under-broadcast
            # writes differently, but a ->co-total chain is identical
            # input; final values must agree
            assert final_g == final_b, var
