"""Scheduler differential tests: the dependency-indexed wakeup path
must be *observationally identical* to the legacy re-scan.

The indexed scheduler changes how buffered messages are found, never
what happens to them: for every protocol in the registry (and partial
replication, which needs its own factory), a seeded workload run under
``scheduler="legacy"`` and ``scheduler="indexed"`` must produce
byte-identical serialized traces -- same events, same order, same
times, same state snapshots -- and identical delay audits.

Protocols that cannot enumerate dependencies (ws-receiver, token,
gossip) resolve both modes to the legacy scan, so the comparison is
trivially exact there; it still runs to pin the fallback's
transparency.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import check_run
from repro.protocols import PROTOCOLS
from repro.protocols.partial import ReplicationMap, partial_factory
from repro.sim import SeededLatency, run_schedule
from repro.sim.scheduler import supports_indexing
from repro.sim.serialize import trace_to_jsonl
from repro.workloads import WorkloadConfig, random_schedule
from repro.workloads.generators import random_partial_schedule

from tests.strategies import latency_seeds, workload_configs

#: Protocols whose ``missing_deps`` enables the indexed path; the rest
#: must fall back to the legacy scan under both modes.
INDEXED_PROTOCOLS = {"optp", "anbkh", "sequencer"}


def _cfg(seed, n=5):
    return WorkloadConfig(n_processes=n, ops_per_process=14,
                          n_variables=4, write_fraction=0.6, seed=seed)


def _run_both(factory, n, sched, seed, **kwargs):
    results = {}
    for mode in ("legacy", "indexed"):
        latency = SeededLatency(seed, dist="exponential", mean=2.5)
        results[mode] = run_schedule(factory, n, sched, latency=latency,
                                     scheduler=mode, **kwargs)
    return results["legacy"], results["indexed"]


def assert_observationally_identical(r_legacy, r_indexed):
    # Strongest check first: the serialized traces are byte-identical,
    # covering event order, timestamps, buffer/apply/discard events and
    # per-event protocol state snapshots.
    assert trace_to_jsonl(r_legacy.trace) == trace_to_jsonl(r_indexed.trace)
    assert r_legacy.stores == r_indexed.stores
    assert r_legacy.messages_sent == r_indexed.messages_sent
    assert r_legacy.write_delays == r_indexed.write_delays
    rep_l, rep_i = check_run(r_legacy), check_run(r_indexed)
    assert rep_l.ok == rep_i.ok
    assert rep_l.total_delays == rep_i.total_delays
    assert rep_l.unnecessary_delays == rep_i.unnecessary_delays


class TestRegistryProtocols:
    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_indexed_matches_legacy(self, name, seed):
        sched = random_schedule(_cfg(seed))
        r_legacy, r_indexed = _run_both(PROTOCOLS[name], 5, sched, seed)
        assert_observationally_identical(r_legacy, r_indexed)

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_mode_resolution_matches_registry_split(self, name):
        proto = PROTOCOLS[name](0, 4)
        assert supports_indexing(proto) == (name in INDEXED_PROTOCOLS), name


class TestRandomizedParity:
    """Hypothesis widens the seed grid above: indexed == legacy on
    arbitrary workload shapes, not just the pinned configurations."""

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(cfg=workload_configs(max_processes=5, max_ops=10),
           name=st.sampled_from(sorted(INDEXED_PROTOCOLS)),
           lseed=latency_seeds)
    def test_indexed_matches_legacy_on_random_workloads(
        self, cfg, name, lseed
    ):
        sched = random_schedule(cfg)
        r_legacy, r_indexed = _run_both(
            PROTOCOLS[name], cfg.n_processes, sched, lseed)
        assert_observationally_identical(r_legacy, r_indexed)


class TestPartialReplication:
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("k", [2, 3])
    def test_round_robin_map(self, seed, k):
        cfg = _cfg(seed, n=4)
        variables = [f"x{i}" for i in range(cfg.n_variables)]
        rmap = ReplicationMap.round_robin(variables, cfg.n_processes, k)
        sched = random_partial_schedule(cfg, rmap)
        r_legacy, r_indexed = _run_both(
            partial_factory(rmap), cfg.n_processes, sched, seed)
        assert_observationally_identical(r_legacy, r_indexed)

    def test_full_map(self):
        cfg = _cfg(7, n=4)
        variables = [f"x{i}" for i in range(cfg.n_variables)]
        rmap = ReplicationMap.full(variables, cfg.n_processes)
        sched = random_partial_schedule(cfg, rmap)
        r_legacy, r_indexed = _run_both(
            partial_factory(rmap), cfg.n_processes, sched, 7)
        assert_observationally_identical(r_legacy, r_indexed)


class TestFaultKnobs:
    """Dedup'd duplicates and crashes go through scheduler park/clear
    paths -- the parity must survive them too."""

    @pytest.mark.parametrize("name", ["optp", "anbkh", "sequencer"])
    def test_duplicates_with_dedup(self, name):
        sched = random_schedule(_cfg(11))
        r_legacy, r_indexed = _run_both(
            PROTOCOLS[name], 5, sched, 11,
            duplicate_prob=0.3, dedup=True)
        assert_observationally_identical(r_legacy, r_indexed)
