"""Adversarial re-park coverage for the dependency-indexed scheduler.

A causal chain a -> b -> c delivered to an observer in *reverse* order
forces the indexed scheduler through its re-park path: c parks under
a's apply event, wakes when a lands, is still BUFFER (b is missing),
and must re-park under b's event -- the one transition the random
differential workloads only hit occasionally.  Every delivery
permutation of the chain must stay byte-identical with the legacy
restart-scan, and the wakeup/re-park counters must show the indexed
path actually took the transitions (not a silent fallback).

Topology (n=4, OptP):

- p0 writes x at t=0.0                       (message a, wid (0,1))
- p1 reads x at 2.0, writes y at 2.5         (message b, depends on a)
- p2 reads y at 4.0, writes z at 4.5         (message c, depends on b)
- p3 issues nothing; scripted latencies pick the arrival order of
  a, b, c there.  All other hops use the default latency (1.0), which
  keeps every non-p3 delivery in causal order.
"""

import itertools

import pytest

from repro.model.operations import WriteId
from repro.sim import run_schedule
from repro.sim.latency import ScriptedLatency, message_key
from repro.sim.serialize import trace_to_jsonl
from repro.workloads import ReadOp, Schedule, ScheduledOp, WriteOp

#: send times of the three chained writes (see module docstring).
SENDS = {
    WriteId(0, 1): 0.0,
    WriteId(1, 1): 2.5,
    WriteId(2, 1): 4.5,
}

OBSERVER = 3


def chain_schedule():
    return Schedule.of([
        ScheduledOp(0.0, 0, WriteOp("x")),
        ScheduledOp(2.0, 1, ReadOp("x")),
        ScheduledOp(2.5, 1, WriteOp("y")),
        ScheduledOp(4.0, 2, ReadOp("y")),
        ScheduledOp(4.5, 2, WriteOp("z")),
    ])


def scripted(arrival_order):
    """Latency model delivering the chain to p3 in ``arrival_order``
    (a tuple of WriteIds) at t=5.0, 6.0, 7.0."""
    script = {}
    for slot, wid in enumerate(arrival_order):
        arrival = 5.0 + slot
        script[(("update", wid), OBSERVER)] = arrival - SENDS[wid]
    return ScriptedLatency(script, default=1.0)


def run_mode(mode, latency, obs=None):
    return run_schedule("optp", 4, chain_schedule(), latency=latency,
                        scheduler=mode, record_state=True, obs=obs)


@pytest.mark.parametrize(
    "order", list(itertools.permutations(sorted(SENDS))),
    ids=lambda o: "-".join(f"p{w.process}" for w in o),
)
def test_every_delivery_order_matches_legacy(order):
    latency = scripted(order)
    r_legacy = run_mode("legacy", latency)
    r_indexed = run_mode("indexed", latency)
    assert trace_to_jsonl(r_legacy.trace) == trace_to_jsonl(r_indexed.trace)
    assert r_legacy.stores == r_indexed.stores
    assert r_legacy.write_delays == r_indexed.write_delays
    # the chain fully applies everywhere under both modes
    assert all(len(store) == 3 for store in r_indexed.stores)


def test_reverse_order_exercises_the_repark_path():
    """Reverse delivery (c, b, a) at p3: both parked messages wake on
    a's apply; c (woken first, still missing b) re-parks under b's
    event and wakes again.  3 wakeups, 1 re-park, nothing dead-parked."""
    from repro.obs import Obs

    obs = Obs.recording()
    a, b, c = sorted(SENDS)
    run_mode("indexed", scripted((c, b, a)), obs=obs)
    reg = obs.registry
    assert reg.value("sched.wakeups", process=OBSERVER) == 3
    assert reg.value("sched.reparks", process=OBSERVER) == 1
    assert not reg.value("sched.dead_parked", process=OBSERVER)
    # both chained messages were write-delayed (buffered) at p3
    assert reg.value("sched.parks", process=OBSERVER, mode="indexed") == 2


def test_in_order_delivery_never_parks():
    """Control: causal-order delivery (a, b, c) buffers nothing."""
    from repro.obs import Obs

    obs = Obs.recording()
    a, b, c = sorted(SENDS)
    run_mode("indexed", scripted((a, b, c)), obs=obs)
    reg = obs.registry
    assert not reg.value("sched.parks", process=OBSERVER, mode="indexed")
    assert not reg.value("sched.wakeups", process=OBSERVER)
