"""Property-based integration tests: the paper's theorems over random
runs.

hypothesis generates workload shapes, latency regimes and seeds; every
generated run is pushed through the full checker.  These are the
machine-checked counterparts of the paper's proofs:

- Theorems 1-2 (characterization) -- `test_write_co_characterizes_co`
- Theorem 3 (safety)              -- inside `check_run` for every run
- Theorem 4 (optimality)          -- `test_optp_delays_all_necessary`,
                                     `test_optp_delays_subset_of_anbkh...`
- Theorem 5 (liveness)            -- inside `check_run` for every run

A caution that shaped the cross-protocol tests here: comparing two
protocols' *end-to-end delay totals* on the same schedule is not a
theorem.  The runs diverge -- a protocol that applies a write earlier
lets a read read-from a newer write, which enlarges the reader's
causal past, and its next write can then buffer at a third replica
where the other run's write does not (hypothesis found a 5-process
schedule where ws-receiver totals 32 delays to OptP's 31).  What *is*
a theorem is the per-receiver predicate comparison on one shared
history: fed the same arrivals, the weaker enabling predicate never
buffers a message the stronger one applies.  `_replay_stream` below
machine-checks exactly that.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import check_run
from repro.core.base import BROADCAST, Disposition, Outgoing
from repro.core.optp import WRITE_CO_KEY, OptPProtocol
from repro.core.vectorclock import vc_join_inplace
from repro.protocols.anbkh import ANBKHProtocol
from repro.protocols.ws_receiver import WSReceiverProtocol
from repro.sim import SeededLatency, run_schedule
from repro.workloads import random_schedule

from tests.strategies import (
    latency_kinds,
    latency_seeds,
    make_latency,
    workload_configs,
)

# Run-generating tests are expensive; keep example counts modest but
# meaningful, and disable the too-slow health check.
RUN_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

configs = workload_configs()


def _record_event_streams(base_cls, cfg, lseed):
    """Run ``base_cls`` on a random schedule and capture each process's
    receiver-side view: the interleaved sequence of local writes and
    first message arrivals.  Replaying one stream against two enabling
    predicates compares them on literally the same history -- the only
    setting where the paper's per-event containments are theorems."""
    streams = {}

    class Recording(base_cls):
        # classify() is the arrival hook, so force the scalar path
        # (the flat backend routes deliveries around it).
        supports_flat_state = False

        def __init__(self, pid, n):
            super().__init__(pid, n)
            self._events = streams.setdefault(pid, [])
            self._seen = set()

        def classify(self, msg):
            if msg.wid not in self._seen:
                self._seen.add(msg.wid)
                self._events.append(("arrive", msg))
            return super().classify(msg)

        def write(self, variable, value):
            self._events.append(("write", variable, value))
            return super().write(variable, value)

    sched = random_schedule(cfg)
    run_schedule(Recording, cfg.n_processes, sched,
                 latency=SeededLatency(lseed, dist="exponential", mean=2.0))
    return streams


def _replay_stream(proto_cls, n, pid, events):
    """Feed one recorded stream to a fresh ``proto_cls`` receiver:
    arrivals classify immediately, buffered messages retry after every
    step.  Local writes are replayed too (they advance the apply
    vector); local reads are not (they touch only send-side state,
    never the enabling predicate).  Returns (wids ever buffered,
    messages still buffered at the end)."""
    proto = proto_cls(pid, n)
    buffered = []
    delayed = set()

    def pump():
        progress = True
        while progress:
            progress = False
            for m in list(buffered):
                d = proto.classify(m)
                if d is not Disposition.BUFFER:
                    if d is Disposition.APPLY:
                        proto.apply_update(m)
                    buffered.remove(m)
                    progress = True

    for ev in events:
        if ev[0] == "write":
            proto.write(ev[1], ev[2])
        else:
            m = ev[1]
            d = proto.classify(m)
            if d is Disposition.APPLY:
                proto.apply_update(m)
            elif d is Disposition.BUFFER:
                buffered.append(m)
                delayed.add(m.wid)
        pump()
    return delayed, len(buffered)


class CoTrackingANBKH(ANBKHProtocol):
    """ANBKH with OptP's ``Write_co`` piggybacked on every message.

    Behaviour (sends, delivery predicate, applies) is pure ANBKH; the
    extra payload key is the co-past vector an OptP sender would have
    attached to the *same* write of the *same* history.  Replaying one
    recorded run against both predicates is Section 3.6 / Figure 3
    machine-checked: ``X_co-safe(e) ⊆ X_ANBKH(e)`` per event, because
    the read-from edges folded into ``Write_co`` are a sub-relation of
    the applied-before-send edges folded into the Fidge-Mattern ``VT``.
    """

    supports_flat_state = False

    def __init__(self, pid, n):
        super().__init__(pid, n)
        self.co_vec = [0] * n
        self.co_last_write_on = {}

    def write(self, variable, value):
        self.co_vec[self.process_id] += 1
        out = super().write(variable, value)
        vec = tuple(self.co_vec)
        self.co_last_write_on[variable] = vec
        msg = out.outgoing[0].message
        tagged = dataclasses.replace(
            msg, payload={**msg.payload, WRITE_CO_KEY: vec})
        return dataclasses.replace(
            out, outgoing=(Outgoing(tagged, BROADCAST),))

    def read(self, variable):
        lwo = self.co_last_write_on.get(variable)
        if lwo is not None:
            vc_join_inplace(self.co_vec, lwo)
        return super().read(variable)

    def apply_update(self, msg):
        super().apply_update(msg)
        self.co_last_write_on[msg.variable] = msg.payload[WRITE_CO_KEY]


class TestClassPProtocols:
    @RUN_SETTINGS
    @given(cfg=configs, lk=latency_kinds, lseed=latency_seeds)
    def test_optp_runs_are_correct_and_optimal(self, cfg, lk, lseed):
        sched = random_schedule(cfg)
        r = run_schedule("optp", cfg.n_processes, sched,
                         latency=make_latency(lk, lseed), record_state=True)
        report = check_run(r)
        assert report.ok, report.summary()
        # Theorem 4: every delay necessary, on every run.
        assert not report.unnecessary_delays, report.summary()
        # Theorems 1-2: Write_co characterizes ->co (vacuous when the
        # generated workload happened to contain no writes).
        if r.writes_issued:
            assert report.characterization_ok is True

    @RUN_SETTINGS
    @given(cfg=configs, lk=latency_kinds, lseed=latency_seeds)
    def test_anbkh_runs_are_correct(self, cfg, lk, lseed):
        sched = random_schedule(cfg)
        r = run_schedule("anbkh", cfg.n_processes, sched,
                         latency=make_latency(lk, lseed))
        report = check_run(r)
        assert report.ok, report.summary()

    @RUN_SETTINGS
    @given(cfg=configs, lseed=latency_seeds)
    def test_optp_delays_subset_of_anbkh_on_same_stream(self, cfg, lseed):
        """Figure 3 / Table 2: per event of one shared history,
        ``X_co-safe(e) ⊆ X_ANBKH(e)``.  A CoTrackingANBKH run records
        each receiver's arrival stream with both vectors piggybacked;
        replaying the stream shows OptP's predicate never buffers a
        message ANBKH's applies.  (Comparing two separate runs' delay
        *totals* is not sound -- see the module docstring.)"""
        streams = _record_event_streams(CoTrackingANBKH, cfg, lseed)
        n = cfg.n_processes
        for pid, events in streams.items():
            optp_delayed, optp_left = _replay_stream(OptPProtocol, n, pid, events)
            anbkh_delayed, anbkh_left = _replay_stream(ANBKHProtocol, n, pid, events)
            assert optp_left == 0 and anbkh_left == 0
            assert optp_delayed <= anbkh_delayed, (
                f"p{pid}: OptP buffered {sorted(optp_delayed - anbkh_delayed)} "
                f"that ANBKH applied")

    @RUN_SETTINGS
    @given(cfg=configs, lseed=latency_seeds)
    def test_anbkh_unnecessary_delays_are_exactly_the_gap_witnesses(
        self, cfg, lseed
    ):
        """Every ANBKH delay the audit calls unnecessary is a real
        false-causality event: the delayed write's causal past was fully
        applied at receipt."""
        sched = random_schedule(cfg)
        latency = SeededLatency(lseed, dist="exponential", mean=2.0)
        r = run_schedule("anbkh", cfg.n_processes, sched, latency=latency)
        report = check_run(r)
        assert report.ok
        for audit in report.unnecessary_delays:
            assert audit.witness is None


class TestWritingSemanticsProtocols:
    @RUN_SETTINGS
    @given(cfg=configs, lk=latency_kinds, lseed=latency_seeds)
    def test_ws_receiver_runs_are_correct(self, cfg, lk, lseed):
        sched = random_schedule(cfg)
        r = run_schedule("ws-receiver", cfg.n_processes, sched,
                         latency=make_latency(lk, lseed), record_state=True)
        report = check_run(r)
        assert report.ok, report.summary()
        # the OptP-style vectors still characterize ->co
        if r.writes_issued:
            assert report.characterization_ok is True

    @RUN_SETTINGS
    @given(cfg=configs, lseed=latency_seeds)
    def test_ws_delays_subset_of_optp_on_same_stream(self, cfg, lseed):
        """Receiver-side overwriting only *weakens* the enabling
        predicate: fed the same arrival stream, the WS receiver never
        buffers a message plain OptP would apply.  (The end-to-end
        totals are not comparable -- WS applies overwriting writes
        earlier, a read can then read-from the newer write, and the
        enlarged ``Write_co`` can buffer downstream where the OptP
        run's write does not; see the module docstring.)"""
        streams = _record_event_streams(WSReceiverProtocol, cfg, lseed)
        n = cfg.n_processes
        for pid, events in streams.items():
            ws_delayed, ws_left = _replay_stream(WSReceiverProtocol, n, pid, events)
            optp_delayed, optp_left = _replay_stream(OptPProtocol, n, pid, events)
            assert ws_left == 0 and optp_left == 0
            assert ws_delayed <= optp_delayed, (
                f"p{pid}: WS buffered {sorted(ws_delayed - optp_delayed)} "
                f"that OptP applied")

    @RUN_SETTINGS
    @given(cfg=configs, lk=latency_kinds, lseed=latency_seeds)
    def test_jimenez_runs_are_correct(self, cfg, lk, lseed):
        sched = random_schedule(cfg)
        r = run_schedule("jimenez-token", cfg.n_processes, sched,
                         latency=make_latency(lk, lseed))
        report = check_run(r)
        assert report.ok, report.summary()

    @RUN_SETTINGS
    @given(cfg=configs, lseed=latency_seeds)
    def test_ws_skip_plus_discard_accounting(self, cfg, lseed):
        """Every skip eventually produces exactly one discarded message
        (channels are reliable), so at quiescence skips == discards."""
        sched = random_schedule(cfg)
        r = run_schedule("ws-receiver", cfg.n_processes, sched,
                         latency=SeededLatency(lseed, dist="exponential", mean=2.0))
        assert r.stat_total("skipped") == r.discards


class TestExtensionProtocols:
    @RUN_SETTINGS
    @given(cfg=configs, lseed=latency_seeds)
    def test_sequencer_runs_are_correct(self, cfg, lseed):
        sched = random_schedule(cfg)
        r = run_schedule("sequencer", cfg.n_processes, sched,
                         latency=make_latency("uniform", lseed))
        report = check_run(r)
        assert report.ok, report.summary()

    @RUN_SETTINGS
    @given(cfg=configs, lseed=latency_seeds)
    def test_gossip_runs_are_correct_and_optimal(self, cfg, lseed):
        sched = random_schedule(cfg)
        r = run_schedule("gossip-optp", cfg.n_processes, sched,
                         latency=make_latency("exponential", lseed))
        report = check_run(r)
        assert report.ok, report.summary()
        # footnote 5: optimality is propagation-independent
        assert not report.unnecessary_delays, report.summary()

    @RUN_SETTINGS
    @given(cfg=configs, lseed=latency_seeds,
           k=st.integers(min_value=1, max_value=3))
    def test_partial_runs_are_correct(self, cfg, lseed, k):
        from repro.protocols.partial import ReplicationMap, partial_factory
        from repro.workloads.generators import random_partial_schedule

        k = min(k, cfg.n_processes)
        variables = [f"x{i}" for i in range(cfg.n_variables)]
        rmap = ReplicationMap.round_robin(variables, cfg.n_processes, k)
        sched = random_partial_schedule(cfg, rmap)
        r = run_schedule(partial_factory(rmap), cfg.n_processes, sched,
                         latency=make_latency("exponential", lseed))
        report = check_run(r)
        assert report.ok, report.summary()
        assert not report.unnecessary_delays, report.summary()


class TestConvergence:
    @RUN_SETTINGS
    @given(cfg=configs, lseed=latency_seeds)
    def test_replicas_agree_on_causally_final_writes(self, cfg, lseed):
        """For every variable whose writes are totally ordered by ->co,
        all replicas must end with the ->co-maximal write's value."""
        sched = random_schedule(cfg)
        r = run_schedule("optp", cfg.n_processes, sched,
                         latency=SeededLatency(lseed))
        co = r.history.causal_order
        by_var = {}
        for w in r.history.writes():
            by_var.setdefault(w.variable, []).append(w)
        for var, writes in by_var.items():
            # totally ordered?
            chain = all(
                co.precedes(a, b) or co.precedes(b, a)
                for i, a in enumerate(writes)
                for b in writes[i + 1:]
            )
            if not chain:
                continue
            final = max(
                writes, key=lambda w: sum(co.precedes(o, w) for o in writes)
            )
            for store in r.stores:
                assert store[var][1] == final.wid
