"""Property-based integration tests: the paper's theorems over random
runs.

hypothesis generates workload shapes, latency regimes and seeds; every
generated run is pushed through the full checker.  These are the
machine-checked counterparts of the paper's proofs:

- Theorems 1-2 (characterization) -- `test_write_co_characterizes_co`
- Theorem 3 (safety)              -- inside `check_run` for every run
- Theorem 4 (optimality)          -- `test_optp_delays_all_necessary`,
                                     `test_optp_never_more_delays_than_anbkh`
- Theorem 5 (liveness)            -- inside `check_run` for every run
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import check_run
from repro.sim import SeededLatency, run_schedule
from repro.workloads import random_schedule

from tests.strategies import (
    latency_kinds,
    latency_seeds,
    make_latency,
    workload_configs,
)

# Run-generating tests are expensive; keep example counts modest but
# meaningful, and disable the too-slow health check.
RUN_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

configs = workload_configs()


class TestClassPProtocols:
    @RUN_SETTINGS
    @given(cfg=configs, lk=latency_kinds, lseed=latency_seeds)
    def test_optp_runs_are_correct_and_optimal(self, cfg, lk, lseed):
        sched = random_schedule(cfg)
        r = run_schedule("optp", cfg.n_processes, sched,
                         latency=make_latency(lk, lseed), record_state=True)
        report = check_run(r)
        assert report.ok, report.summary()
        # Theorem 4: every delay necessary, on every run.
        assert not report.unnecessary_delays, report.summary()
        # Theorems 1-2: Write_co characterizes ->co (vacuous when the
        # generated workload happened to contain no writes).
        if r.writes_issued:
            assert report.characterization_ok is True

    @RUN_SETTINGS
    @given(cfg=configs, lk=latency_kinds, lseed=latency_seeds)
    def test_anbkh_runs_are_correct(self, cfg, lk, lseed):
        sched = random_schedule(cfg)
        r = run_schedule("anbkh", cfg.n_processes, sched,
                         latency=make_latency(lk, lseed))
        report = check_run(r)
        assert report.ok, report.summary()

    @RUN_SETTINGS
    @given(cfg=configs, lseed=latency_seeds)
    def test_optp_never_more_delays_than_anbkh(self, cfg, lseed):
        """On identical message schedules (SeededLatency keys by write
        identity), OptP's enabling sets are subsets of ANBKH's, so its
        delay count can never exceed ANBKH's."""
        sched = random_schedule(cfg)
        latency = SeededLatency(lseed, dist="uniform", lo=0.2, hi=4.0)
        r_optp = run_schedule("optp", cfg.n_processes, sched, latency=latency)
        r_anbkh = run_schedule("anbkh", cfg.n_processes, sched, latency=latency)
        assert r_optp.write_delays <= r_anbkh.write_delays

    @RUN_SETTINGS
    @given(cfg=configs, lseed=latency_seeds)
    def test_anbkh_unnecessary_delays_are_exactly_the_gap_witnesses(
        self, cfg, lseed
    ):
        """Every ANBKH delay the audit calls unnecessary is a real
        false-causality event: the delayed write's causal past was fully
        applied at receipt."""
        sched = random_schedule(cfg)
        latency = SeededLatency(lseed, dist="exponential", mean=2.0)
        r = run_schedule("anbkh", cfg.n_processes, sched, latency=latency)
        report = check_run(r)
        assert report.ok
        for audit in report.unnecessary_delays:
            assert audit.witness is None


class TestWritingSemanticsProtocols:
    @RUN_SETTINGS
    @given(cfg=configs, lk=latency_kinds, lseed=latency_seeds)
    def test_ws_receiver_runs_are_correct(self, cfg, lk, lseed):
        sched = random_schedule(cfg)
        r = run_schedule("ws-receiver", cfg.n_processes, sched,
                         latency=make_latency(lk, lseed), record_state=True)
        report = check_run(r)
        assert report.ok, report.summary()
        # the OptP-style vectors still characterize ->co
        if r.writes_issued:
            assert report.characterization_ok is True

    @RUN_SETTINGS
    @given(cfg=configs, lseed=latency_seeds)
    def test_ws_receiver_never_more_delays_than_optp(self, cfg, lseed):
        """Overwriting can only remove enabling obligations, never add:
        the WS variant's delays are bounded by OptP's on the same
        schedule."""
        sched = random_schedule(cfg)
        latency = SeededLatency(lseed, dist="exponential", mean=2.0)
        r_ws = run_schedule("ws-receiver", cfg.n_processes, sched, latency=latency)
        r_optp = run_schedule("optp", cfg.n_processes, sched, latency=latency)
        assert r_ws.write_delays <= r_optp.write_delays

    @RUN_SETTINGS
    @given(cfg=configs, lk=latency_kinds, lseed=latency_seeds)
    def test_jimenez_runs_are_correct(self, cfg, lk, lseed):
        sched = random_schedule(cfg)
        r = run_schedule("jimenez-token", cfg.n_processes, sched,
                         latency=make_latency(lk, lseed))
        report = check_run(r)
        assert report.ok, report.summary()

    @RUN_SETTINGS
    @given(cfg=configs, lseed=latency_seeds)
    def test_ws_skip_plus_discard_accounting(self, cfg, lseed):
        """Every skip eventually produces exactly one discarded message
        (channels are reliable), so at quiescence skips == discards."""
        sched = random_schedule(cfg)
        r = run_schedule("ws-receiver", cfg.n_processes, sched,
                         latency=SeededLatency(lseed, dist="exponential", mean=2.0))
        assert r.stat_total("skipped") == r.discards


class TestExtensionProtocols:
    @RUN_SETTINGS
    @given(cfg=configs, lseed=latency_seeds)
    def test_sequencer_runs_are_correct(self, cfg, lseed):
        sched = random_schedule(cfg)
        r = run_schedule("sequencer", cfg.n_processes, sched,
                         latency=make_latency("uniform", lseed))
        report = check_run(r)
        assert report.ok, report.summary()

    @RUN_SETTINGS
    @given(cfg=configs, lseed=latency_seeds)
    def test_gossip_runs_are_correct_and_optimal(self, cfg, lseed):
        sched = random_schedule(cfg)
        r = run_schedule("gossip-optp", cfg.n_processes, sched,
                         latency=make_latency("exponential", lseed))
        report = check_run(r)
        assert report.ok, report.summary()
        # footnote 5: optimality is propagation-independent
        assert not report.unnecessary_delays, report.summary()

    @RUN_SETTINGS
    @given(cfg=configs, lseed=latency_seeds,
           k=st.integers(min_value=1, max_value=3))
    def test_partial_runs_are_correct(self, cfg, lseed, k):
        from repro.protocols.partial import ReplicationMap, partial_factory
        from repro.workloads.generators import random_partial_schedule

        k = min(k, cfg.n_processes)
        variables = [f"x{i}" for i in range(cfg.n_variables)]
        rmap = ReplicationMap.round_robin(variables, cfg.n_processes, k)
        sched = random_partial_schedule(cfg, rmap)
        r = run_schedule(partial_factory(rmap), cfg.n_processes, sched,
                         latency=make_latency("exponential", lseed))
        report = check_run(r)
        assert report.ok, report.summary()
        assert not report.unnecessary_delays, report.summary()


class TestConvergence:
    @RUN_SETTINGS
    @given(cfg=configs, lseed=latency_seeds)
    def test_replicas_agree_on_causally_final_writes(self, cfg, lseed):
        """For every variable whose writes are totally ordered by ->co,
        all replicas must end with the ->co-maximal write's value."""
        sched = random_schedule(cfg)
        r = run_schedule("optp", cfg.n_processes, sched,
                         latency=SeededLatency(lseed))
        co = r.history.causal_order
        by_var = {}
        for w in r.history.writes():
            by_var.setdefault(w.variable, []).append(w)
        for var, writes in by_var.items():
            # totally ordered?
            chain = all(
                co.precedes(a, b) or co.precedes(b, a)
                for i, a in enumerate(writes)
                for b in writes[i + 1:]
            )
            if not chain:
                continue
            final = max(
                writes, key=lambda w: sum(co.precedes(o, w) for o in writes)
            )
            for store in r.stores:
                assert store[var][1] == final.wid
