"""Recovery unit tests: RecoveryError triage fields, ``lose_tail``
mutation, and the DurableLog snapshot-fold bookkeeping.

The end-to-end recovery claim lives in test_crash_equivalence.py; this
file pins the building blocks an operator (or the mutation self-check)
leans on when recovery does *not* go cleanly.
"""

import pytest

from repro.sim.cluster import _resolve_factory
from repro.durability import (
    DurableLog,
    RecoveryError,
    encode_read_record,
    encode_write_record,
    rebuild_node,
    restore_node,
    snapshot_node,
)


def _optp():
    return _resolve_factory("optp")


class TestRecoveryError:
    def test_message_is_self_contained(self):
        err = RecoveryError(
            "serving-layer recovery failed",
            snapshot_seq=7,
            wal_records=12,
            wal_tail_bytes=3,
            detail="ValueError('boom')",
        )
        text = str(err)
        assert "serving-layer recovery failed" in text
        assert "snapshot covers 7 records" in text
        assert "12 WAL records replayable" in text
        assert "3 torn tail bytes" in text
        assert "boom" in text

    def test_structured_fields(self):
        err = RecoveryError("r", snapshot_seq=1, wal_records=2,
                            wal_tail_bytes=0)
        assert err.snapshot_seq == 1
        assert err.wal_records == 2
        assert err.wal_tail_bytes == 0
        assert err.journal_tail == []

    def test_optional_fields_omitted_from_message(self):
        assert str(RecoveryError("just this")) == "just this"

    def test_undecodable_record_wraps_to_recovery_error(self):
        with pytest.raises(RecoveryError) as exc:
            rebuild_node(_optp(), 0, 2, None, [b"\xff garbage"])
        assert exc.value.wal_records == 1
        assert "replay failed during recovery" in str(exc.value)

    def test_non_snapshot_protocol_rejected(self):
        class NoSnap:
            supports_snapshot = False

            def __init__(self, process_id, n_processes):
                pass

        with pytest.raises(RecoveryError, match="does not support"):
            rebuild_node(NoSnap, 0, 2, None, [])


class TestLoseTail:
    """``lose_tail`` is the injectable BrokenRecovery bug: the rebuilt
    node must demonstrably *forget* the dropped suffix."""

    def _bodies(self, values):
        return [encode_write_record(float(i), "x", v)
                for i, v in enumerate(values)]

    def test_tail_dropped(self):
        bodies = self._bodies(["a", "b", "c"])
        whole = rebuild_node(_optp(), 0, 2, None, bodies)
        broken = rebuild_node(_optp(), 0, 2, None, bodies, lose_tail=1)
        assert whole.protocol.writes_issued == 3
        assert broken.protocol.writes_issued == 2
        assert whole.do_read("x")[0] == "c"
        assert broken.do_read("x")[0] == "b"

    def test_lose_more_than_log_is_empty_replay(self):
        node = rebuild_node(_optp(), 0, 2, None,
                            self._bodies(["a"]), lose_tail=5)
        assert node.protocol.writes_issued == 0


class TestDurableLog:
    def _node(self):
        # a throwaway live node to snapshot during folds
        return rebuild_node(_optp(), 0, 2, None, [])

    def test_fold_cadence(self):
        log = DurableLog(snap_every=2)
        node = self._node()
        for i in range(5):
            rec = encode_read_record(float(i), "x")
            node.do_read("x")
            log.append(rec, node)
        # folds at records 2 and 4; one record rides the WAL tail
        assert log.snap_seq == 4
        assert len(log.bodies) == 1
        assert log.snapshot is not None

    def test_no_fold_when_disabled(self):
        log = DurableLog(snap_every=0)
        node = self._node()
        for i in range(5):
            log.append(encode_read_record(float(i), "x"), node)
        assert log.snapshot is None
        assert log.snap_seq == 0
        assert len(log.bodies) == 5

    def test_clone_shares_bytes_copies_spine(self):
        log = DurableLog(snap_every=0)
        node = self._node()
        log.append(encode_read_record(0.0, "x"), node)
        twin = log.clone()
        assert twin.bodies == log.bodies
        assert twin.bodies is not log.bodies
        assert twin.bodies[0] is log.bodies[0]
        log.append(encode_read_record(1.0, "x"), node)
        assert len(twin.bodies) == 1

    def test_rebuild_round_trip(self):
        log = DurableLog(snap_every=2)
        live = rebuild_node(_optp(), 0, 2, None, [])
        for i, v in enumerate(["a", "b", "c"]):
            live.do_write("x", v)
            log.append(encode_write_record(float(i), "x", v), live)
        back = log.rebuild(_optp(), 0, 2)
        assert back.protocol.debug_state() == live.protocol.debug_state()
        assert back.do_read("x")[0] == "c"


class TestNodeSnapshotDoc:
    def test_round_trip_through_document(self):
        live = rebuild_node(_optp(), 0, 2, None, [])
        live.do_write("x", "a")
        live.do_read("x")
        doc = snapshot_node(live)
        fresh = rebuild_node(_optp(), 0, 2, None, [])
        restore_node(fresh, doc)
        assert fresh.protocol.debug_state() == live.protocol.debug_state()
        assert fresh.do_read("x")[0] == "a"
