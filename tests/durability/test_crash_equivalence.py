"""Crash-equivalence differential: recovery is a semantic no-op.

The central correctness claim of the recovery path is that a replica
rebuilt from its snapshot + WAL is indistinguishable from one that
never crashed.  This suite proves it exhaustively on a small workload:
take a fixed deterministic schedule, then for every step index ``i``
and every process ``p`` run the same schedule with ``crash(p)`` +
``recover(p)`` spliced in at step ``i``, and require the final trace
(byte-identical JSONL) and every node's protocol state to match the
uncrashed baseline exactly.

Covers both snapshot-capable protocols (OptP and ANBKH) and both
recovery regimes: pure WAL replay (``snap_every=0``) and snapshot
restore + tail replay (``snap_every=1``, a snapshot after every
record -- the tightest possible fold).
"""

import json

import pytest

from repro.mck.cluster import ControlledCluster
from repro.mck.faults import FaultSpec
from repro.mck.workloads import MCK_WORKLOADS
from repro.sim.serialize import trace_to_jsonl

PROTOCOLS = ["optp", "anbkh"]
SNAP_EVERY = [0, 1]


def _cluster(protocol, snap_every):
    return ControlledCluster(
        protocol,
        MCK_WORKLOADS["pair"],
        faults=FaultSpec(crash=1, snap_every=snap_every),
    )


def _trace_text(cluster):
    """Trace JSONL with the ``time`` field dropped: the checker clock
    counts *transitions*, and the spliced crash/recover pair consumes
    two ticks -- everything else must match byte-for-byte."""
    lines = []
    for line in trace_to_jsonl(cluster.trace).splitlines():
        doc = json.loads(line)
        doc.pop("time", None)
        lines.append(json.dumps(doc, sort_keys=True))
    return "\n".join(lines)


def _first_choice(cluster):
    """Deterministic scheduler: the first enabled op/deliver transition
    (``enabled()`` already orders deterministically)."""
    for t in cluster.enabled():
        if t[0] in ("op", "deliver"):
            return t
    return None


def _baseline(protocol, snap_every):
    """Run the deterministic schedule to quiescence, collecting the
    choice sequence and the final observables."""
    cluster = _cluster(protocol, snap_every)
    choices = []
    while True:
        t = _first_choice(cluster)
        if t is None:
            break
        findings = cluster.execute(t)
        assert findings == [], findings
        choices.append(t)
    assert cluster.status() == "quiescent"
    return choices, _trace_text(cluster), _node_states(cluster)


def _node_states(cluster):
    return [
        (
            sorted(node.protocol.store_snapshot().items(), key=repr),
            node.protocol.debug_state(),
        )
        for node in cluster.nodes
    ]


@pytest.mark.parametrize("snap_every", SNAP_EVERY)
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_crash_recover_at_every_step_is_invisible(protocol, snap_every):
    choices, base_trace, base_states = _baseline(protocol, snap_every)
    assert len(choices) >= 8  # the workload must actually exercise replay
    for i in range(len(choices) + 1):
        for p in range(2):
            cluster = _cluster(protocol, snap_every)
            for t in choices[:i]:
                cluster.execute(t)
            assert cluster.execute(("crash", p)) == []
            assert cluster.execute(("recover", p)) == []
            for t in choices[i:]:
                findings = cluster.execute(t)
                assert findings == [], (protocol, snap_every, i, p, findings)
            assert cluster.status() == "quiescent"
            assert _trace_text(cluster) == base_trace, (
                f"{protocol} snap_every={snap_every}: trace diverged after "
                f"crash({p})+recover({p}) at step {i}"
            )
            assert _node_states(cluster) == base_states, (
                f"{protocol} snap_every={snap_every}: node state diverged "
                f"after crash({p})+recover({p}) at step {i}"
            )


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_double_crash_same_process(protocol):
    """Budget 2: the same process crashing twice (the second recovery
    replays a WAL that itself was rebuilt once) stays invisible."""
    choices, base_trace, base_states = _baseline(protocol, 2)
    mid = len(choices) // 2
    cluster = ControlledCluster(
        protocol,
        MCK_WORKLOADS["pair"],
        faults=FaultSpec(crash=2, snap_every=2),
    )
    for t in choices[:mid]:
        cluster.execute(t)
    cluster.execute(("crash", 0))
    cluster.execute(("recover", 0))
    for t in choices[mid:-1]:
        cluster.execute(t)
    cluster.execute(("crash", 0))
    cluster.execute(("recover", 0))
    assert cluster.execute(choices[-1]) == []
    assert cluster.status() == "quiescent"
    assert _trace_text(cluster) == base_trace
    assert _node_states(cluster) == base_states


def test_crash_without_recovery_blocks_only_the_victim():
    """Crash-stop: the survivor still quiesces by its own accounting
    and the trace stays a prefix-consistent subset (no invariant
    findings)."""
    cluster = ControlledCluster(
        "optp",
        MCK_WORKLOADS["pair"],
        faults=FaultSpec(crash=1, recover=False, snap_every=2),
    )
    assert cluster.execute(("crash", 1)) == []
    while True:
        t = _first_choice(cluster)
        if t is None:
            break
        assert cluster.execute(t) == []
    assert ("recover", 1) not in cluster.enabled()
    assert cluster.status() in ("quiescent", "stuck")
    assert cluster.status() == "quiescent"
