"""WAL / snapshot codec round-trips and torn-tail recovery.

Two layers: hypothesis property tests over the record vocabulary
(every encodable record must decode back identically, and *any*
corruption -- a cut at an arbitrary byte, a flipped bit -- must reduce
the log to exactly its last valid prefix, never crash, never resync
into garbage), and deliberate framing tests for the snapshot file's
all-or-nothing contract.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import ControlMessage, UpdateMessage
from repro.durability import (
    KIND_READ,
    KIND_RECV,
    KIND_WRITE,
    WalError,
    WalWriter,
    decode_record,
    decode_snapshot,
    encode_read_record,
    encode_recv_record,
    encode_snapshot,
    encode_write_record,
    frame_record,
    read_framed_file,
    read_wal,
    write_framed_file,
)
from repro.model.operations import WriteId

# -- the value universe the WAL may carry ------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False),
    st.text(max_size=30),
    st.binary(max_size=30),
    st.builds(WriteId, st.integers(0, 50), st.integers(1, 2**31)),
)

values = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.lists(inner, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=8), inner, max_size=4),
    ),
    max_leaves=12,
)

times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)

messages = st.one_of(
    st.builds(
        UpdateMessage,
        sender=st.integers(0, 3),
        wid=st.builds(WriteId, st.integers(0, 3), st.integers(1, 100)),
        variable=st.text(min_size=1, max_size=10),
        value=scalars,
        payload=st.fixed_dictionaries(
            {"write_co": st.tuples(st.integers(0, 9), st.integers(0, 9))}
        ),
    ),
    st.builds(
        ControlMessage,
        sender=st.integers(0, 3),
        kind=st.text(min_size=1, max_size=8),
        payload=st.dictionaries(st.text(max_size=8), scalars, max_size=3),
    ),
)

records = st.one_of(
    st.builds(encode_write_record, times, st.text(min_size=1, max_size=12),
              values),
    st.builds(encode_read_record, times, st.text(min_size=1, max_size=12)),
    st.builds(encode_recv_record, times, messages),
)


class TestRecordRoundtrip:
    @given(t=times, variable=st.text(min_size=1, max_size=12), value=values)
    @settings(max_examples=150, deadline=None)
    def test_write_record(self, t, variable, value):
        rec = decode_record(encode_write_record(t, variable, value))
        assert rec == (KIND_WRITE, t, variable, value)

    @given(t=times, variable=st.text(min_size=1, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_read_record(self, t, variable):
        rec = decode_record(encode_read_record(t, variable))
        assert rec == (KIND_READ, t, variable)

    @given(t=times, message=messages)
    @settings(max_examples=150, deadline=None)
    def test_recv_record(self, t, message):
        kind, back_t, back_msg = decode_record(encode_recv_record(t, message))
        assert kind == KIND_RECV
        assert back_t == t
        assert back_msg == message
        assert type(back_msg) is type(message)

    @given(st.binary(max_size=80))
    @settings(max_examples=200, deadline=None)
    def test_garbage_body_never_crashes(self, blob):
        # the record body behind a *valid* CRC frame could still be
        # damaged in memory; decoding must fail loudly, not corrupt
        try:
            decode_record(blob)
        except WalError:
            pass


class TestSnapshotRoundtrip:
    @given(doc=st.dictionaries(st.text(max_size=8), values, max_size=5))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, doc):
        assert decode_snapshot(encode_snapshot(doc)) == doc

    def test_trailing_bytes_rejected(self):
        blob = encode_snapshot({"a": 1}) + b"\x00"
        with pytest.raises(WalError):
            decode_snapshot(blob)


class TestWalFile:
    def _write(self, path, bodies, fsync_every=2):
        writer = WalWriter(path, fsync_every=fsync_every)
        for body in bodies:
            writer.append(body)
        writer.sync()
        writer.close()

    @given(bodies=st.lists(records, min_size=0, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_disk_roundtrip(self, bodies, tmp_path_factory):
        path = tmp_path_factory.mktemp("wal") / "node.wal"
        self._write(path, bodies)
        res = read_wal(path)
        assert res.bodies == bodies
        assert not res.truncated
        assert res.tail_bytes == 0

    @given(data=st.data(), bodies=st.lists(records, min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_cut_at_any_byte_yields_last_valid_prefix(
        self, data, bodies, tmp_path_factory
    ):
        """A crash mid-append tears the file at an arbitrary byte; the
        reader must recover exactly the records whose frames lie fully
        before the cut."""
        path = tmp_path_factory.mktemp("wal") / "node.wal"
        self._write(path, bodies)
        blob = path.read_bytes()
        cut = data.draw(st.integers(0, len(blob) - 1))
        path.write_bytes(blob[:cut])
        sizes = [len(frame_record(b)) for b in bodies]
        expected, consumed = [], 0
        for body, size in zip(bodies, sizes):
            if consumed + size > cut:
                break
            expected.append(body)
            consumed += size
        res = read_wal(path)
        assert res.bodies == expected
        assert res.valid_bytes == consumed
        assert res.truncated == (cut != consumed)
        assert res.tail_bytes == cut - consumed

    @given(data=st.data(), bodies=st.lists(records, min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_bit_flip_stops_at_damaged_record(
        self, data, bodies, tmp_path_factory
    ):
        """Flipping one bit anywhere inside record i's frame (CRC, body
        or length) must reduce the readable log to records[:i] -- the
        CRC gate refuses to resync past damage."""
        path = tmp_path_factory.mktemp("wal") / "node.wal"
        self._write(path, bodies)
        blob = bytearray(path.read_bytes())
        victim = data.draw(st.integers(0, len(bodies) - 1))
        start = sum(len(frame_record(b)) for b in bodies[:victim])
        size = len(frame_record(bodies[victim]))
        offset = start + data.draw(st.integers(0, size - 1))
        bit = data.draw(st.integers(0, 7))
        blob[offset] ^= 1 << bit
        path.write_bytes(bytes(blob))
        res = read_wal(path)
        assert res.bodies == bodies[:victim]
        assert res.truncated

    def test_missing_file_is_empty(self, tmp_path):
        res = read_wal(tmp_path / "nope.wal")
        assert res.bodies == [] and not res.truncated

    def test_append_resumes_after_reopen(self, tmp_path):
        path = tmp_path / "node.wal"
        first = encode_read_record(1.0, "x")
        second = encode_read_record(2.0, "y")
        self._write(path, [first])
        writer = WalWriter(path)
        writer.append(second)
        writer.sync()
        writer.close()
        assert read_wal(path).bodies == [first, second]

    def test_fsync_batching_counts(self, tmp_path):
        writer = WalWriter(tmp_path / "node.wal", fsync_every=3)
        for i in range(7):
            writer.append(encode_read_record(float(i), "x"))
        writer.sync()
        writer.close()
        # 7 appends at a cadence of 3 -> 2 automatic syncs + the final
        # explicit one; group commit is what keeps fsyncs << records
        assert writer.records == 7
        assert writer.fsyncs == 3


class TestFramedFile:
    def test_roundtrip_and_atomic_replace(self, tmp_path):
        path = tmp_path / "node.snap"
        write_framed_file(path, b"one")
        write_framed_file(path, b"two")
        assert read_framed_file(path) == b"two"
        assert not path.with_suffix(".snap.tmp").exists()

    def test_missing_returns_none(self, tmp_path):
        assert read_framed_file(tmp_path / "nope.snap") is None

    def test_corruption_raises_not_tolerated(self, tmp_path):
        """Snapshots are written atomically, so -- unlike the WAL tail
        -- a damaged snapshot is a real fault, not a crash artifact."""
        path = tmp_path / "node.snap"
        write_framed_file(path, b"payload")
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(WalError):
            read_framed_file(path)

    def test_oversize_record_rejected(self, tmp_path):
        from repro.durability import MAX_RECORD

        path = tmp_path / "node.wal"
        big_len = struct.pack(">II", MAX_RECORD + 1, 0)
        path.write_bytes(big_len + b"x" * 64)
        res = read_wal(path)
        assert res.bodies == [] and res.truncated
