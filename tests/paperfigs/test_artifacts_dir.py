"""The checked-in artifacts/ directory must stay in sync with the
regenerators: stale committed artifacts would misrepresent the
reproduction."""

from pathlib import Path

import pytest

from repro.paperfigs import ARTIFACTS

ARTIFACTS_DIR = Path(__file__).resolve().parents[2] / "artifacts"


@pytest.mark.parametrize("name", sorted(ARTIFACTS))
def test_committed_artifact_is_current(name):
    path = ARTIFACTS_DIR / f"{name}.txt"
    assert path.exists(), (
        f"missing {path}; regenerate with "
        "`python -m repro.paperfigs --out artifacts`"
    )
    committed = path.read_text()
    fresh = ARTIFACTS[name]() + "\n"
    assert committed == fresh, (
        f"{path} is stale; regenerate with "
        "`python -m repro.paperfigs --out artifacts`"
    )
