"""Tests for the ASCII space-time diagram renderer."""

import pytest

from repro.paperfigs import spacetime
from repro.paperfigs.spacetime import render_spacetime
from repro.sim import run_schedule
from repro.sim.trace import EventKind, Trace
from repro.workloads import Schedule, fig3


class TestRenderer:
    @pytest.fixture(scope="class")
    def fig3_runs(self):
        scen = fig3()
        r_anbkh = run_schedule("anbkh", 3, scen.schedule, latency=scen.latency)
        r_optp = run_schedule("optp", 3, scen.schedule, latency=scen.latency)
        return r_anbkh, r_optp

    def test_buffer_glyph_only_under_anbkh(self, fig3_runs):
        r_anbkh, r_optp = fig3_runs
        text_a = render_spacetime(r_anbkh.trace, r_anbkh.history)
        text_o = render_spacetime(r_optp.trace, r_optp.history)
        assert "BF:b" in text_a
        assert "BF" not in text_o.replace("BF=buffered", "")

    def test_one_row_per_process(self, fig3_runs):
        r, _ = fig3_runs
        text = render_spacetime(r.trace, r.history)
        for label in ("p1", "p2", "p3"):
            assert any(line.startswith(label) for line in text.splitlines())

    def test_columns_aligned(self, fig3_runs):
        """Every row must have a cell in every column (grid integrity)."""
        r, _ = fig3_runs
        lines = render_spacetime(r.trace, r.history).splitlines()
        t_row = lines[0].split()
        for row in lines[1:4]:
            assert len(row.split()) == len(t_row)

    def test_empty_trace(self):
        r = run_schedule("optp", 2, Schedule.of([]))
        assert render_spacetime(r.trace) == "(empty trace)"

    def test_truncation(self, fig3_runs):
        r, _ = fig3_runs
        text = render_spacetime(r.trace, r.history, max_events=3)
        assert "truncated at 3 events" in text

    def test_kind_filter(self, fig3_runs):
        r, _ = fig3_runs
        text = render_spacetime(r.trace, r.history,
                                kinds={EventKind.APPLY, EventKind.WRITE})
        assert "rc:" not in text

    def test_unknown_wid_fallback(self):
        """Applies for writes missing from the history (e.g. filtered
        traces) render with a process#seq fallback label."""
        from repro.model.operations import WriteId

        t = Trace(2)
        t.record(0.0, 1, EventKind.APPLY, wid=WriteId(0, 1), variable="x", value=1)
        text = render_spacetime(t, history=None)
        assert "ap:0#1" in text

    def test_generate_artifact(self):
        text = spacetime.generate()
        assert "BF:b" in text
        assert "Same message schedule under OptP" in text
