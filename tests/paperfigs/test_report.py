"""Tests for the one-shot reproduction report."""

import pytest

from repro.paperfigs.report import build_report


@pytest.fixture(scope="module")
def report_text():
    return build_report(quick=True, protocols=("optp", "anbkh"))


class TestReport:
    def test_structure(self, report_text):
        for heading in ("# Reproduction report", "## Verification sweep",
                        "## Paper artifacts", "## Quantitative sweeps"):
            assert heading in report_text

    def test_all_artifacts_included(self, report_text):
        from repro.paperfigs import ARTIFACTS

        for name in ARTIFACTS:
            assert f"### {name}" in report_text

    def test_verification_verdicts(self, report_text):
        assert "`optp`: verified" in report_text
        assert "unnecessary=0" in report_text
        assert "FAILED" not in report_text

    def test_sweeps_present(self, report_text):
        assert "Q1a: delays vs process count" in report_text
        assert "Q3: writing semantics" in report_text

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.md"
        assert main(["report", "--quick", "--out", str(out)]) == 0
        assert out.read_text().startswith("# Reproduction report")
