"""Golden tests: the regenerated artifacts must state the paper's facts."""

import pytest

from repro.paperfigs import ARTIFACTS, fig1, fig2, fig3, fig6, fig7, table1, table2
from repro.workloads.patterns import WID_A, WID_B, WID_C, WID_D


class TestTable1:
    def test_exact_rows(self):
        d = table1.as_dict()
        for k in range(3):
            assert d[(k, WID_A)] == frozenset()
            assert d[(k, WID_C)] == {WID_A}
            assert d[(k, WID_B)] == {WID_A}
            assert d[(k, WID_D)] == {WID_A, WID_B}

    def test_generate_layout(self):
        text = table1.generate()
        assert "Table 1" in text
        assert text.count("apply_") >= 12
        assert "apply_3(w3(x2)d): {apply_3(w1(x1)a), apply_3(w2(x2)b)}" in text


class TestTable2:
    def test_exact_rows(self):
        d = table2.as_dict()
        for k in range(3):
            assert d[(k, WID_A)] == frozenset()
            assert d[(k, WID_C)] == {WID_A}
            assert d[(k, WID_B)] == {WID_A, WID_C}
            assert d[(k, WID_D)] == {WID_A, WID_C, WID_B}

    def test_generate_reports_six_excess_rows(self):
        text = table2.generate()
        assert "Table 2" in text
        assert "rows where X_ANBKH ⊃ X_co-safe: 6" in text
        assert text.count("needlessly waits for: w1(x1)c") == 6


class TestFigure1:
    def test_run1_no_delay_run2_one_delay(self):
        r1, r2 = fig1.runs()
        assert len(r1.trace.delayed(2)) == 0
        assert len(r2.trace.delayed(2)) == 1

    def test_generate_shows_buffering_only_in_run2(self):
        text = fig1.generate()
        first, second = text.split("(2)")
        assert "BUFFERED" not in first
        assert "BUFFERED" in second


class TestFigure2:
    def test_nonnecessary_delay_reported(self):
        text = fig2.generate()
        assert "NON-NECESSARY delay" in text
        assert "apply_3(w2(x2)b)" in text


class TestFigure3:
    def test_anbkh_delays_optp_does_not(self):
        r_anbkh, r_optp = fig3.runs()
        assert r_anbkh.write_delays == 1
        assert r_optp.write_delays == 0

    def test_generate_mentions_false_causality(self):
        text = fig3.generate()
        assert "w2(x2)b ||co w1(x1)c" in text
        assert "delays: 1 (unnecessary: 1)" in text
        assert "delays: 0 (unnecessary: 0)" in text


class TestFigure6:
    def test_vector_evolution_matches_paper(self):
        """The two facts Figure 6 calls out: b's vector is [1,1,0]
        (no trace of the applied-but-unread c), and p3 applies b
        before c."""
        r = fig6.run()
        write_b = r.trace.apply_event(1, WID_B)
        assert write_b.state["write_co"] == (1, 1, 0)
        apply_b_p3 = r.trace.apply_event(2, WID_B)
        apply_c_p3 = r.trace.apply_event(2, WID_C)
        assert apply_b_p3.seq < apply_c_p3.seq

    def test_generate(self):
        text = fig6.generate()
        assert "Write_co=[1,1,0]" in text
        assert "all necessary: True" in text


class TestFigure7:
    def test_graph_edges(self):
        g = fig7.graph()
        assert set(g.edge_list()) == {
            (WID_A, WID_C),
            (WID_A, WID_B),
            (WID_B, WID_D),
        }

    def test_generate(self):
        text = fig7.generate()
        assert "w1(x1)a -> w1(x1)c" in text
        assert "w1(x1)a -> w2(x2)b" in text
        assert "w2(x2)b -> w3(x2)d" in text


class TestRegistry:
    def test_all_artifacts_generate(self):
        for name, gen in ARTIFACTS.items():
            text = gen()
            assert isinstance(text, str) and len(text) > 50, name

    def test_main_module(self):
        from repro.paperfigs.__main__ import main

        assert main(["table1"]) == 0
        assert main(["bogus"]) == 2
