"""Tests for the quantitative comparison harness (Q1-Q3)."""

import pytest

from repro.paperfigs.comparison import (
    SweepRow,
    compare_on_schedule,
    render_sweep,
    sweep_processes,
    sweep_write_fraction,
    sweep_zipf,
)
from repro.workloads import WorkloadConfig, random_schedule

SMALL = dict(seeds=(0, 1), protocols=("optp", "anbkh"))


def metrics_by_protocol(ms):
    return {m.protocol: m for m in ms}


class TestCompareOnSchedule:
    def test_all_protocols_verified(self):
        cfg = WorkloadConfig(n_processes=4, ops_per_process=10, seed=2)
        ms = compare_on_schedule(random_schedule(cfg), 4)
        assert {m.protocol for m in ms} == {
            "optp", "anbkh", "ws-receiver", "jimenez-token"
        }

    def test_headline_inequality(self):
        """Q1: OptP <= ANBKH delays, OptP has zero unnecessary."""
        for seed in range(4):
            cfg = WorkloadConfig(
                n_processes=5, ops_per_process=12, write_fraction=0.7, seed=seed
            )
            by = metrics_by_protocol(
                compare_on_schedule(
                    random_schedule(cfg), 5,
                    protocols=("optp", "anbkh"), latency_seed=seed,
                )
            )
            assert by["optp"].delays <= by["anbkh"].delays
            assert by["optp"].unnecessary_delays == 0

    def test_verification_can_be_disabled(self):
        cfg = WorkloadConfig(n_processes=3, ops_per_process=5, seed=0)
        ms = compare_on_schedule(
            random_schedule(cfg), 3, protocols=("optp",), verify=False
        )
        assert ms[0].protocol == "optp"


class TestSweeps:
    def test_process_sweep_shape(self):
        rows = sweep_processes(n_values=(3, 5), ops_per_process=8, **SMALL)
        assert len(rows) == 4  # 2 values x 2 protocols
        assert all(isinstance(r, SweepRow) for r in rows)
        # Q2: OptP's unnecessary delays are zero at every point
        for r in rows:
            if r.protocol == "optp":
                assert r.mean_unnecessary == 0.0

    def test_optp_wins_or_ties_every_point(self):
        rows = sweep_processes(n_values=(4, 8), ops_per_process=10, **SMALL)
        by_value = {}
        for r in rows:
            by_value.setdefault(r.value, {})[r.protocol] = r
        for value, protos in by_value.items():
            assert protos["optp"].mean_delays <= protos["anbkh"].mean_delays

    def test_write_fraction_sweep(self):
        rows = sweep_write_fraction(fractions=(0.3, 0.9), ops_per_process=8, **SMALL)
        assert {r.value for r in rows} == {0.3, 0.9}

    def test_zipf_sweep_produces_skips(self):
        """Q3: with heavy skew the WS-receiver protocol skips writes."""
        rows = sweep_zipf(
            skews=(2.0,), ops_per_process=15,
            seeds=(0, 1), protocols=("ws-receiver", "jimenez-token"),
        )
        ws = [r for r in rows if r.protocol == "ws-receiver"]
        tok = [r for r in rows if r.protocol == "jimenez-token"]
        assert ws[0].mean_skipped > 0
        assert tok[0].mean_suppressed > 0

    def test_render(self):
        rows = sweep_processes(n_values=(3,), ops_per_process=5, **SMALL)
        text = render_sweep(rows, title="T")
        assert "T" in text and "optp" in text and "n_processes" in text
