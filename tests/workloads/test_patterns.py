"""Tests for the canonical H1 scenarios: each must reproduce its paper
figure's delay behaviour exactly."""

import pytest

from repro.analysis import assert_run_ok, check_run
from repro.model.legality import is_causally_consistent
from repro.model.operations import WriteId
from repro.sim import run_schedule
from repro.workloads import (
    ALL_SCENARIOS,
    example1_programs,
    fig1_run1,
    fig1_run2,
    fig3,
    fig6,
    h1_schedule,
)
from repro.workloads.patterns import WID_A, WID_B, WID_C, WID_D

SCENARIOS = [fig1_run1(), fig1_run2(), fig3(), fig6()]


def run_scenario(scen, proto, **kw):
    return run_schedule(proto, 3, scen.schedule, latency=scen.latency, **kw)


class TestScenarioDelays:
    @pytest.mark.parametrize("scen", SCENARIOS, ids=lambda s: s.name)
    def test_optp_delay_counts(self, scen):
        r = run_scenario(scen, "optp", record_state=True)
        report = assert_run_ok(r, expect_optimal=True)
        assert report.total_delays == scen.expected_optp_delays

    @pytest.mark.parametrize("scen", SCENARIOS, ids=lambda s: s.name)
    def test_anbkh_delay_counts(self, scen):
        r = run_scenario(scen, "anbkh")
        report = assert_run_ok(r)  # safe and live, possibly not optimal
        assert report.total_delays == scen.expected_anbkh_delays

    @pytest.mark.parametrize("scen", SCENARIOS, ids=lambda s: s.name)
    def test_optp_realizes_h1(self, scen):
        """Under OptP every scenario produces exactly the H1 history:
        p1 reads a, p2 reads b."""
        r = run_scenario(scen, "optp")
        reads = list(r.history.reads())
        assert reads[0].value == "a" and reads[0].process == 1
        assert reads[1].value == "b" and reads[1].process == 2

    def test_fig3_anbkh_unnecessary_delay(self):
        """The false-causality witness: ANBKH's single delay in fig3 is
        UNNECESSARY (b ||co c), while every OptP delay is necessary."""
        r = run_scenario(fig3(), "anbkh")
        report = check_run(r)
        assert len(report.unnecessary_delays) == 1
        audit = report.unnecessary_delays[0]
        assert audit.wid == WID_B and audit.process == 2

    def test_fig1_run2_optp_delay_is_necessary(self):
        r = run_scenario(fig1_run2(), "optp")
        report = check_run(r)
        assert report.total_delays == 1
        audit = report.delay_audits[0]
        assert audit.necessary and audit.witness == WID_A

    def test_fig6_optp_ignores_late_c(self):
        """p2 applies b (after a) without waiting for c, which arrives
        at t=9 -- after p2 already read b and wrote d."""
        r = run_scenario(fig6(), "optp")
        trace = r.trace
        apply_b = trace.apply_event(2, WID_B)
        apply_c = trace.apply_event(2, WID_C)
        write_d = trace.apply_event(2, WID_D)
        assert apply_b.seq < write_d.seq < apply_c.seq


class TestScenarioStructure:
    def test_registry(self):
        assert set(ALL_SCENARIOS) == {"fig1-run1", "fig1-run2", "fig3", "fig6"}

    def test_schedule_is_h1(self):
        sched = h1_schedule()
        assert sched.n_ops == 6 and sched.n_writes == 4

    def test_arrival_before_send_rejected(self):
        from repro.workloads.patterns import _script

        with pytest.raises(ValueError):
            _script({(WID_B, 2): 1.0})  # b is sent at 3.5

    def test_closed_loop_example1(self):
        from repro.sim import ConstantLatency, run_programs

        r = run_programs("optp", 3, example1_programs(),
                         latency=ConstantLatency(1.0))
        assert is_causally_consistent(r.history)
        writes = {w.value for w in r.history.writes()}
        assert writes == {"a", "b", "c", "d"}
