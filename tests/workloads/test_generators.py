"""Unit tests for workload generators and the ops vocabulary."""

import pytest

from repro.workloads import (
    Program,
    ReadOp,
    Schedule,
    ScheduledOp,
    WorkloadConfig,
    WriteOp,
    chain_programs,
    random_programs,
    random_schedule,
    write_burst_schedule,
)
from repro.workloads.ops import WaitReadStep, WriteStep


class TestWorkloadConfig:
    def test_defaults_valid(self):
        WorkloadConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_processes": 0},
            {"ops_per_process": -1},
            {"n_variables": 0},
            {"write_fraction": 1.5},
            {"write_fraction": -0.1},
            {"mean_gap": 0},
            {"zipf_s": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadConfig(**kwargs)


class TestRandomSchedule:
    def test_deterministic_in_seed(self):
        cfg = WorkloadConfig(seed=13)
        assert random_schedule(cfg) == random_schedule(cfg)

    def test_different_seeds_differ(self):
        a = random_schedule(WorkloadConfig(seed=1))
        b = random_schedule(WorkloadConfig(seed=2))
        assert a != b

    def test_counts(self):
        cfg = WorkloadConfig(n_processes=4, ops_per_process=10)
        sched = random_schedule(cfg)
        assert sched.n_ops == 40
        for p in range(4):
            assert len(sched.for_process(p)) == 10

    def test_write_fraction_extremes(self):
        all_writes = random_schedule(WorkloadConfig(write_fraction=1.0))
        assert all_writes.n_writes == all_writes.n_ops
        all_reads = random_schedule(WorkloadConfig(write_fraction=0.0))
        assert all_reads.n_writes == 0

    def test_zipf_concentrates(self):
        flat = random_schedule(
            WorkloadConfig(ops_per_process=200, n_variables=8, zipf_s=0.0, seed=3)
        )
        skew = random_schedule(
            WorkloadConfig(ops_per_process=200, n_variables=8, zipf_s=2.0, seed=3)
        )

        def x0_share(s):
            ops = [o for o in s.ops]
            return sum(1 for o in ops if o.op.variable == "x0") / len(ops)

        assert x0_share(skew) > x0_share(flat) * 2

    def test_times_sorted_and_nonnegative(self):
        sched = random_schedule(WorkloadConfig(seed=5))
        times = [o.time for o in sched]
        assert times == sorted(times)
        assert all(t >= 0 for t in times)


class TestRandomPrograms:
    def test_deterministic(self):
        cfg = WorkloadConfig(seed=4)
        assert random_programs(cfg) == random_programs(cfg)

    def test_shape(self):
        cfg = WorkloadConfig(n_processes=3, ops_per_process=7)
        programs = random_programs(cfg)
        assert len(programs) == 3
        assert all(len(p) == 7 for p in programs)


class TestBurstSchedule:
    def test_per_process_variables(self):
        sched = write_burst_schedule(3, bursts=2, burst_size=4)
        assert sched.n_ops == 24
        assert sched.n_writes == 24
        vars_p0 = {o.op.variable for o in sched.for_process(0)}
        assert vars_p0 == {"x0"}

    def test_shared_variable(self):
        sched = write_burst_schedule(2, bursts=1, burst_size=3,
                                     variable_per_process=False)
        assert {o.op.variable for o in sched} == {"x"}

    def test_validation(self):
        with pytest.raises(ValueError):
            write_burst_schedule(2, bursts=0, burst_size=1)


class TestChainPrograms:
    def test_structure(self):
        programs = chain_programs(3, rounds=2)
        assert len(programs) == 3
        # p0 starts each round with a write; later rounds wait first
        assert isinstance(programs[0].steps[0], WriteStep)
        assert isinstance(programs[0].steps[1], WaitReadStep)
        # p1, p2: wait then relay
        assert isinstance(programs[1].steps[0], WaitReadStep)
        assert isinstance(programs[1].steps[1], WriteStep)

    def test_needs_two_processes(self):
        with pytest.raises(ValueError):
            chain_programs(1)

    def test_runs_and_builds_deep_chain(self):
        from repro.model.causality_graph import WriteCausalityGraph
        from repro.sim import ConstantLatency, run_programs

        programs = chain_programs(4, rounds=1)
        r = run_programs("optp", 4, programs, latency=ConstantLatency(0.5))
        g = WriteCausalityGraph.from_history(r.history)
        assert g.longest_chain_length() == 3  # c0 -> c1 -> c2 -> c3


class TestScheduleType:
    def test_of_sorts(self):
        s = Schedule.of(
            [
                ScheduledOp(2.0, 0, WriteOp("x")),
                ScheduledOp(1.0, 1, ReadOp("x")),
            ]
        )
        assert [o.time for o in s] == [1.0, 2.0]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ScheduledOp(-1.0, 0, WriteOp("x"))

    def test_max_process_empty(self):
        assert Schedule.of([]).max_process() == -1
