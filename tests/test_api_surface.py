"""API-surface tests: defaults, dunders and small helpers that the
integration paths exercise only implicitly."""

import pytest

from repro.core.base import (
    BROADCAST,
    ControlMessage,
    Outgoing,
    Protocol,
    UpdateMessage,
)
from repro.core.optp import OptPProtocol
from repro.model.operations import OpKind, WriteId
from repro.sim.latency import ConstantLatency, ScriptedLatency
from repro.workloads.ops import Program, WaitReadStep, WriteStep


class TestBaseProtocolDefaults:
    def test_on_timer_requires_interval(self):
        with pytest.raises(NotImplementedError, match="timer_interval"):
            OptPProtocol(0, 2).on_timer()

    def test_debug_state_default_empty(self):
        class Minimal(OptPProtocol):
            def debug_state(self):
                return Protocol.debug_state(self)

        assert Minimal(0, 2).debug_state() == {}

    def test_record_apply_without_recorder_is_noop(self):
        p = OptPProtocol(0, 2)
        p.record_apply(WriteId(0, 1), "x", 1)  # must not raise


class TestMessageTypes:
    def test_update_str(self):
        m = UpdateMessage(sender=0, wid=WriteId(0, 1), variable="x", value=7)
        assert "x=7" in str(m)

    def test_control_str(self):
        c = ControlMessage(sender=2, kind="token")
        assert str(c) == "ctrl(token from p2)"

    def test_outgoing_default_broadcast(self):
        m = UpdateMessage(sender=0, wid=WriteId(0, 1), variable="x", value=1)
        assert Outgoing(m).dest == BROADCAST


class TestOpsHelpers:
    def test_program_of(self):
        p = Program.of(WriteStep("x", 1), WriteStep("y", 2))
        assert len(p) == 2
        assert [s.variable for s in p] == ["x", "y"]

    def test_wait_read_matches_exact(self):
        s = WaitReadStep("x", expect="v")
        assert s.matches("v") and not s.matches("w")

    def test_wait_read_matches_accept_set(self):
        s = WaitReadStep("x", expect="a", accept=("a", "c"))
        assert s.matches("a") and s.matches("c") and not s.matches("b")

    def test_opkind_str(self):
        assert str(OpKind.READ) == "read"
        assert str(OpKind.WRITE) == "write"


class TestLatencyForkDefaults:
    def test_stateless_models_fork_to_self(self):
        m = ConstantLatency(1.0)
        assert m.fork() is m
        s = ScriptedLatency({}, default=1.0)
        assert s.fork() is s


class TestRenderHelpers:
    def test_sequence_with_sends(self):
        from repro.paperfigs.render import sequence_at
        from repro.sim import run_schedule
        from repro.workloads import Schedule, ScheduledOp, WriteOp

        sched = Schedule.of([ScheduledOp(0.0, 0, WriteOp("x", 1))])
        r = run_schedule("optp", 2, sched)
        with_sends = sequence_at(r.trace, r.history, 0, skip_sends=False)
        without = sequence_at(r.trace, r.history, 0)
        assert "send_1" in with_sends
        assert "send_1" not in without

    def test_discard_label(self):
        from repro.paperfigs.render import paper_event_label
        from repro.model.history import example_h1
        from repro.sim.trace import EventKind, Trace

        t = Trace(3)
        ev = t.record(0.0, 1, EventKind.DISCARD, wid=WriteId(0, 1),
                      variable="x1")
        label = paper_event_label(example_h1(), ev)
        assert "DISCARDED" in label


class TestDunderAllConsistency:
    """Every ``__all__`` in the package names things that exist, and the
    reprolint public API is actually exported."""

    MODULES = None  # populated lazily; a list of (name, module) pairs

    @classmethod
    def _modules(cls):
        if cls.MODULES is None:
            import importlib
            import pkgutil

            import repro

            pairs = []
            prefix = repro.__name__ + "."
            for info in pkgutil.walk_packages(repro.__path__, prefix):
                mod = importlib.import_module(info.name)
                pairs.append((info.name, mod))
            cls.MODULES = pairs
        return cls.MODULES

    def test_every_dunder_all_name_exists(self):
        missing = []
        for name, mod in self._modules():
            for export in getattr(mod, "__all__", ()):
                if not hasattr(mod, export):
                    missing.append(f"{name}.{export}")
        assert missing == []

    def test_dunder_all_entries_unique_and_sorted_sets(self):
        for name, mod in self._modules():
            exports = list(getattr(mod, "__all__", ()))
            assert len(exports) == len(set(exports)), (
                f"{name}.__all__ has duplicates"
            )

    def test_lint_public_api_exported(self):
        import repro.lint as lint

        for export in ("Finding", "LintReport", "Rule", "all_rules",
                       "lint_paths", "lint_file", "register",
                       "rule_catalog"):
            assert export in lint.__all__
            assert hasattr(lint, export)

    def test_lint_rules_all_registered(self):
        from repro.lint import rule_catalog
        import repro.lint.rules as rules

        catalog_classes = {type(r).__name__ for r in rule_catalog()}
        assert catalog_classes == set(rules.__all__)


class TestRunResultHelpers:
    def test_delays_per_process_and_summary(self):
        from repro.sim import run_schedule
        from repro.workloads import fig1_run2

        scen = fig1_run2()
        r = run_schedule("optp", 3, scen.schedule, latency=scen.latency)
        per = r.delays_per_process()
        assert per == [0, 0, 1]
        assert sum(per) == r.write_delays
        assert "delays=1" in r.summary()

    def test_history_cached(self):
        from repro.sim import run_schedule
        from repro.workloads import h1_schedule

        r = run_schedule("optp", 3, h1_schedule())
        assert r.history is r.history
