"""Unit + substrate tests for the gossip (anti-entropy) OptP variant."""

import pytest

from repro.analysis import check_run
from repro.core.optp import WRITE_CO_KEY
from repro.model.operations import WriteId
from repro.protocols.base import ControlMessage, Disposition
from repro.protocols.gossip import DIGEST_KIND, GossipOptPProtocol
from repro.sim import ConstantLatency, SeededLatency, run_schedule
from repro.workloads import (
    Schedule,
    ScheduledOp,
    WorkloadConfig,
    WriteOp,
    random_schedule,
)


def make(n=3):
    return [GossipOptPProtocol(i, n) for i in range(n)]


class TestLocalBehaviour:
    def test_write_emits_no_traffic(self):
        p = GossipOptPProtocol(0, 3)
        out = p.write("x", 1)
        assert out.outgoing == ()
        assert p.store_get("x") == (1, WriteId(0, 1))
        assert p.log[WriteId(0, 1)][0] == "x"

    def test_timer_rotates_peers(self):
        p = GossipOptPProtocol(0, 4)
        peers = []
        for _ in range(6):
            (out,) = p.on_timer()
            peers.append(out.dest)
            assert out.message.kind == DIGEST_KIND
        assert peers == [1, 2, 3, 1, 2, 3]

    def test_single_process_no_gossip(self):
        p = GossipOptPProtocol(0, 1)
        assert p.on_timer() == ()


class TestDigestExchange:
    def test_digest_answered_with_missing_writes(self):
        p0, p1, _ = make()
        p0.write("x", 1)
        p0.write("y", 2)
        digest = ControlMessage(sender=1, kind=DIGEST_KIND,
                                payload={"apply": (0, 0, 0), "batch_seq": 1})
        out = list(p0.on_control(digest))
        assert len(out) == 2
        assert {o.dest for o in out} == {1}
        assert {o.message.wid for o in out} == {WriteId(0, 1), WriteId(0, 2)}
        # messages carry the writer and its Write_co, like plain OptP
        assert all(o.message.sender == 0 for o in out)
        assert all(WRITE_CO_KEY in o.message.payload for o in out)

    def test_digest_skips_known_prefix(self):
        p0, _, _ = make()
        p0.write("x", 1)
        p0.write("x", 2)
        digest = ControlMessage(sender=2, kind=DIGEST_KIND,
                                payload={"apply": (1, 0, 0), "batch_seq": 1})
        out = list(p0.on_control(digest))
        assert [o.message.wid for o in out] == [WriteId(0, 2)]

    def test_forwards_third_party_writes(self):
        """Anti-entropy relays writes the responder merely applied."""
        p0, p1, _ = make()
        msg = None
        p1.write("z", 9)
        digest = ControlMessage(sender=0, kind=DIGEST_KIND,
                                payload={"apply": (0, 0, 0), "batch_seq": 1})
        (out,) = p1.on_control(digest)
        p0.apply_update(out.message)
        # now p0 can answer p2's digest with p1's write
        digest2 = ControlMessage(sender=2, kind=DIGEST_KIND,
                                 payload={"apply": (0, 0, 0), "batch_seq": 1})
        answers = list(p0.on_control(digest2))
        assert any(o.message.wid == WriteId(1, 1) for o in answers)

    def test_unknown_control_kind(self):
        with pytest.raises(ValueError):
            GossipOptPProtocol(0, 2).on_control(
                ControlMessage(sender=1, kind="bogus")
            )


class TestDuplicates:
    def test_duplicate_discarded(self):
        p0, p1, _ = make()
        p0.write("x", 1)
        digest = ControlMessage(sender=1, kind=DIGEST_KIND,
                                payload={"apply": (0, 0, 0), "batch_seq": 1})
        (out,) = p0.on_control(digest)
        assert p1.classify(out.message) is Disposition.APPLY
        p1.apply_update(out.message)
        assert p1.classify(out.message) is Disposition.DISCARD
        p1.discard_update(out.message)
        assert p1.stats()["duplicates"] == 1


class TestOnSubstrate:
    def test_verified_and_optimal(self):
        for seed in range(3):
            cfg = WorkloadConfig(n_processes=4, ops_per_process=10,
                                 write_fraction=0.7, seed=seed)
            r = run_schedule("gossip-optp", 4, random_schedule(cfg),
                             latency=SeededLatency(seed, dist="exponential",
                                                   mean=0.8))
            report = check_run(r)
            assert report.ok, report.summary()
            assert not report.unnecessary_delays  # optimality survives gossip

    def test_liveness_through_rounds(self):
        """A single write spreads to everyone purely via gossip."""
        sched = Schedule.of([ScheduledOp(0.0, 2, WriteOp("x", "seed"))])
        r = run_schedule("gossip-optp", 5, sched, latency=ConstantLatency(0.3))
        for k in range(5):
            assert r.trace.apply_event(k, WriteId(2, 1)) is not None
        # propagation took at least one gossip round
        assert r.duration >= GossipOptPProtocol.timer_interval

    def test_log_garbage_collected(self):
        """Stability-vector GC: after a quiesced run with ongoing gossip
        rounds, stable entries have been dropped from the logs."""
        cfg = WorkloadConfig(n_processes=4, ops_per_process=12,
                             write_fraction=0.8, seed=11)
        r = run_schedule("gossip-optp", 4, random_schedule(cfg),
                         latency=ConstantLatency(0.2))
        total_writes = r.writes_issued
        dropped = r.stat_total("gc_dropped")
        assert dropped > 0, "no GC happened despite full propagation"
        # every surviving log entry is genuinely not-yet-stable at that
        # replica's knowledge horizon; sizes must be below the total
        for stats in r.protocol_stats:
            assert stats["log_size"] < total_writes

    def test_gc_never_drops_unstable_entries(self):
        """A write a peer still misses must survive GC."""
        p0, p1, p2 = make()
        p0.write("x", 1)
        # p1 claims to have applied nothing; p2 never heard from
        digest = ControlMessage(sender=1, kind=DIGEST_KIND,
                                payload={"apply": (0, 0, 0), "batch_seq": 1})
        p0.on_control(digest)
        assert WriteId(0, 1) in p0.log  # p1 (and p2) still need it

    def test_duplicates_accounted(self):
        cfg = WorkloadConfig(n_processes=5, ops_per_process=8,
                             write_fraction=0.8, seed=7)
        r = run_schedule("gossip-optp", 5, random_schedule(cfg),
                         latency=SeededLatency(7, dist="exponential", mean=1.0))
        assert r.discards == r.stat_total("duplicates")
