"""Unit + substrate tests for the totally-ordered sequencer baseline."""

import pytest

from repro.analysis import check_run
from repro.model.operations import BOTTOM, WriteId
from repro.protocols.base import BROADCAST, ControlMessage, Disposition
from repro.protocols.sequencer import (
    GSN_KEY,
    SEQUENCER,
    WREQ_KIND,
    SequencerProtocol,
)
from repro.sim import ConstantLatency, SeededLatency, run_schedule
from repro.workloads import (
    Schedule,
    ScheduledOp,
    WorkloadConfig,
    WriteOp,
    random_schedule,
)


def make(n=3):
    return [SequencerProtocol(i, n) for i in range(n)]


class TestWriterSide:
    def test_non_sequencer_write_defers_local_apply(self):
        _, p1, _ = make()
        out = p1.write("x", 1)
        assert out.local_apply is False
        assert len(out.outgoing) == 1
        assert out.outgoing[0].dest == SEQUENCER
        assert out.outgoing[0].message.kind == WREQ_KIND
        # the ordered replica is untouched...
        assert p1.store_get("x") == (BOTTOM, None)

    def test_read_own_pending_write(self):
        """Store-buffer forwarding: Definition 1 requires a process to
        see its own program-order writes."""
        _, p1, _ = make()
        p1.write("x", 42)
        r = p1.read("x")
        assert r.value == 42 and r.read_from == WriteId(1, 1)

    def test_pending_cleared_when_stamped_copy_returns(self):
        p0, p1, _ = make()
        out = p1.write("x", 42)
        (req,) = [o.message for o in out.outgoing]
        (stamped,) = [o.message for o in p0.on_control(req)]
        assert p1.classify(stamped) is Disposition.APPLY
        p1.apply_update(stamped)
        assert p1.pending_own == {}
        assert p1.store_get("x") == (42, WriteId(1, 1))

    def test_sequencer_own_write_applies_immediately(self):
        p0, _, _ = make()
        out = p0.write("x", 7)
        assert out.local_apply is True
        assert p0.store_get("x") == (7, WriteId(0, 1))
        (o,) = out.outgoing
        assert o.dest == BROADCAST
        assert o.message.payload[GSN_KEY] == 0


class TestSequencerSide:
    def test_stamps_in_arrival_order(self):
        p0 = SequencerProtocol(0, 3)
        req1 = SequencerProtocol(1, 3).write("x", 1).outgoing[0].message
        req2 = SequencerProtocol(2, 3).write("y", 2).outgoing[0].message
        (u1,) = [o.message for o in p0.on_control(req1)]
        (u2,) = [o.message for o in p0.on_control(req2)]
        assert u1.payload[GSN_KEY] == 0 and u2.payload[GSN_KEY] == 1

    def test_same_sender_gap_parked(self):
        """Requests overtaking each other on a non-FIFO channel must be
        stamped in issue (->po) order."""
        p0 = SequencerProtocol(0, 3)
        writer = SequencerProtocol(1, 3)
        req1 = writer.write("x", 1).outgoing[0].message
        req2 = writer.write("x", 2).outgoing[0].message
        assert p0.on_control(req2) == ()  # parked
        out = list(p0.on_control(req1))
        gsns = [o.message.payload[GSN_KEY] for o in out]
        wids = [o.message.wid for o in out]
        assert gsns == [0, 1]
        assert wids == [WriteId(1, 1), WriteId(1, 2)]

    def test_non_sequencer_rejects_requests(self):
        p1 = SequencerProtocol(1, 3)
        req = SequencerProtocol(2, 3).write("x", 1).outgoing[0].message
        with pytest.raises(AssertionError):
            p1.on_control(req)

    def test_unknown_control_kind(self):
        with pytest.raises(ValueError):
            SequencerProtocol(0, 2).on_control(
                ControlMessage(sender=1, kind="bogus")
            )


class TestReceiverSide:
    def test_applies_in_gsn_order(self):
        p0 = SequencerProtocol(0, 3)
        w1 = SequencerProtocol(1, 3)
        u1 = p0.on_control(w1.write("x", 1).outgoing[0].message)[0].message
        u2 = p0.on_control(w1.write("y", 2).outgoing[0].message)[0].message
        p2 = SequencerProtocol(2, 3)
        assert p2.classify(u2) is Disposition.BUFFER
        assert p2.classify(u1) is Disposition.APPLY
        p2.apply_update(u1)
        assert p2.classify(u2) is Disposition.APPLY


class TestOnSubstrate:
    def test_verified_runs(self):
        for seed in range(3):
            cfg = WorkloadConfig(n_processes=4, ops_per_process=12,
                                 write_fraction=0.7, seed=seed)
            r = run_schedule("sequencer", 4, random_schedule(cfg),
                             latency=SeededLatency(seed, dist="exponential",
                                                   mean=2.0))
            report = check_run(r)
            assert report.ok, report.summary()

    def test_liveness_including_writer_applies(self):
        sched = Schedule.of([
            ScheduledOp(0.0, 1, WriteOp("x", 1)),
            ScheduledOp(0.5, 2, WriteOp("y", 2)),
            ScheduledOp(1.0, 0, WriteOp("z", 3)),
        ])
        r = run_schedule("sequencer", 3, sched, latency=ConstantLatency(1.0))
        for wid in r.trace.writes_issued():
            for k in range(3):
                assert r.trace.apply_event(k, wid) is not None, (wid, k)

    def test_total_order_identical_everywhere(self):
        cfg = WorkloadConfig(n_processes=4, ops_per_process=10,
                             write_fraction=1.0, seed=5)
        r = run_schedule("sequencer", 4, random_schedule(cfg),
                         latency=SeededLatency(5, dist="exponential", mean=2.0))
        orders = [r.trace.apply_order(k) for k in range(4)]
        assert all(o == orders[0] for o in orders[1:])
        assert r.converged()

    def test_costs_more_delays_than_optp(self):
        """The consistency-spectrum claim of the paper's introduction."""
        totals = {"sequencer": 0, "optp": 0}
        for seed in range(3):
            cfg = WorkloadConfig(n_processes=5, ops_per_process=12,
                                 write_fraction=0.8, seed=seed)
            sched = random_schedule(cfg)
            for proto in totals:
                r = run_schedule(proto, 5, sched,
                                 latency=SeededLatency(seed, dist="exponential",
                                                       mean=2.0))
                totals[proto] += r.write_delays
        assert totals["sequencer"] > totals["optp"]
