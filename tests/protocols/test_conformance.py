"""Protocol conformance suite: one contract, every implementation.

Every registered protocol (plus partial replication, which needs its
own factory) runs over the *same* randomized workloads and must
produce:

- a **legal, causally consistent** history (Definitions 1-2, via the
  full ``check_run`` report: legality + Theorem-3 safety + class-𝒫
  liveness accounting);
- **causally convergent** stores at quiescence: two replicas may end a
  variable on different writes only when those writes are concurrent
  under ``->co`` (causal consistency imposes no order on concurrent
  writes; divergence on *ordered* writes would witness a missed or
  misordered apply).

New protocols added to the registry are picked up automatically --
appearing here is the price of admission.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import check_run
from repro.protocols import PROTOCOLS
from repro.protocols.partial import ReplicationMap, partial_factory
from repro.sim import SeededLatency, run_schedule
from repro.workloads import WorkloadConfig, random_schedule
from repro.workloads.generators import random_partial_schedule

from tests.strategies import latency_seeds, workload_configs

SEEDS = [0, 1, 2, 3]


def _cfg(seed):
    return WorkloadConfig(n_processes=4, ops_per_process=10,
                          n_variables=3, write_fraction=0.6, seed=seed)


def assert_conformant(result):
    report = check_run(result)
    assert report.ok, report.summary()
    assert_causally_convergent(result)


def assert_causally_convergent(result):
    """Divergent final writes for a variable must be ->co-concurrent."""
    co = result.history.causal_order
    writes_by_wid = {w.wid: w for w in result.history.writes()}
    variables = {v for store in result.stores for v in store}
    for var in variables:
        finals = {}
        for p, store in enumerate(result.stores):
            if var in store:
                finals[p] = store[var][1]
        wids = set(finals.values())
        for w1 in wids:
            for w2 in wids:
                if w1 == w2 or w1 not in writes_by_wid or w2 not in writes_by_wid:
                    continue
                a, b = writes_by_wid[w1], writes_by_wid[w2]
                assert not (co.precedes(a, b) or co.precedes(b, a)), (
                    f"replicas diverge on {var!r} between causally "
                    f"ordered writes {w1} and {w2}: finals {finals}"
                )


class TestRegistryConformance:
    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_legal_consistent_convergent(self, name, seed):
        """All protocols on the SAME schedule per seed."""
        sched = random_schedule(_cfg(seed))
        r = run_schedule(
            PROTOCOLS[name], 4, sched,
            latency=SeededLatency(seed, dist="exponential", mean=2.0),
            record_state=True,
        )
        assert_conformant(r)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(cfg=workload_configs(max_processes=4, max_ops=8),
           name=st.sampled_from(sorted(PROTOCOLS)),
           lseed=latency_seeds)
    def test_legal_consistent_convergent_on_random_shapes(
        self, cfg, name, lseed
    ):
        sched = random_schedule(cfg)
        r = run_schedule(PROTOCOLS[name], cfg.n_processes, sched,
                         latency=SeededLatency(lseed))
        assert_conformant(r)


class TestPartialConformance:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("k", [2, 3])
    def test_legal_consistent_convergent(self, seed, k):
        cfg = _cfg(seed)
        variables = [f"x{i}" for i in range(cfg.n_variables)]
        rmap = ReplicationMap.round_robin(variables, cfg.n_processes, k)
        sched = random_partial_schedule(cfg, rmap)
        r = run_schedule(
            partial_factory(rmap), cfg.n_processes, sched,
            latency=SeededLatency(seed, dist="exponential", mean=2.0),
        )
        assert_conformant(r)
