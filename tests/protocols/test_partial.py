"""Tests for partially replicated causal DSM (the [14] setting)."""

import pytest

from repro.analysis import check_run
from repro.model.operations import BOTTOM, WriteId
from repro.protocols.base import Disposition
from repro.protocols.partial import (
    PartialReplicationProtocol,
    ReplicationMap,
    partial_factory,
)
from repro.sim import ConstantLatency, SeededLatency, run_schedule
from repro.workloads import WorkloadConfig
from repro.workloads.generators import random_partial_schedule


class TestReplicationMap:
    def test_round_robin(self):
        rmap = ReplicationMap.round_robin(["a", "b", "c"], 4, 2)
        assert rmap.holders("a") == {0, 1}
        assert rmap.holders("b") == {1, 2}
        assert rmap.holders("c") == {2, 3}
        assert rmap.held_by(1) == {"a", "b"}

    def test_full(self):
        rmap = ReplicationMap.full(["a"], 3)
        assert rmap.holders("a") == {0, 1, 2}

    def test_validation(self):
        with pytest.raises(ValueError, match="no replicas"):
            ReplicationMap({"a": []}, 3)
        with pytest.raises(ValueError, match="out of range"):
            ReplicationMap({"a": [5]}, 3)
        with pytest.raises(ValueError):
            ReplicationMap.round_robin(["a"], 3, 0)
        with pytest.raises(KeyError, match="not in the replication map"):
            ReplicationMap({"a": [0]}, 2).holders("zzz")


class TestAccessControl:
    def test_write_to_unheld_rejected(self):
        rmap = ReplicationMap({"x": [0], "y": [1]}, 2)
        p1 = PartialReplicationProtocol(1, 2, rmap)
        with pytest.raises(PermissionError, match="cannot write"):
            p1.write("x", 1)

    def test_read_of_unheld_rejected(self):
        rmap = ReplicationMap({"x": [0]}, 2)
        p1 = PartialReplicationProtocol(1, 2, rmap)
        with pytest.raises(PermissionError, match="cannot read"):
            p1.read("x")

    def test_wrong_cluster_size_rejected(self):
        rmap = ReplicationMap({"x": [0]}, 2)
        with pytest.raises(ValueError, match="different cluster"):
            PartialReplicationProtocol(0, 3, rmap)


class TestMulticast:
    def test_write_goes_to_holders_only(self):
        rmap = ReplicationMap({"x": [0, 2]}, 4)
        p0 = PartialReplicationProtocol(0, 4, rmap)
        out = p0.write("x", 1)
        assert [o.dest for o in out.outgoing] == [2]
        assert p0.stats()["unreplicated"] == 2   # p1 and p3 never get it
        assert p0.missing_applies() == 2


class TestTransitiveDependencyThroughUnheldVariable:
    """The crux: w(x) ->co w(y) ->co w(z) with a replica holding
    {x, z} but not y must still order x before z."""

    def _setup(self):
        rmap = ReplicationMap({"x": [0, 2], "y": [0, 1], "z": [1, 2]}, 3)
        p0 = PartialReplicationProtocol(0, 3, rmap)
        p1 = PartialReplicationProtocol(1, 3, rmap)
        p2 = PartialReplicationProtocol(2, 3, rmap)
        # p0: w(x)a ; r(x) ; w(y)b          (a ->co b)
        out_a = p0.write("x", "a")
        p0.read("x")
        out_b = p0.write("y", "b")
        msg_a = out_a.outgoing[0].message   # -> p2
        msg_b = out_b.outgoing[0].message   # -> p1
        # p1: applies b, reads it, writes z  (b ->co c)
        assert p1.classify(msg_b) is Disposition.APPLY
        p1.apply_update(msg_b)
        p1.read("y")
        out_c = p1.write("z", "c")
        (to_p2,) = out_c.outgoing
        assert to_p2.dest == 2
        return msg_a, to_p2.message, p2

    def test_z_waits_for_x_at_holder_of_both(self):
        msg_a, msg_c, p2 = self._setup()
        # c arrives first: must buffer although p2 never sees y
        assert p2.classify(msg_c) is Disposition.BUFFER
        p2.apply_update(msg_a)
        assert p2.classify(msg_c) is Disposition.APPLY
        p2.apply_update(msg_c)
        assert p2.store_get("z") == ("c", WriteId(1, 1))

    def test_in_order_applies_without_delay(self):
        msg_a, msg_c, p2 = self._setup()
        assert p2.classify(msg_a) is Disposition.APPLY
        p2.apply_update(msg_a)
        assert p2.classify(msg_c) is Disposition.APPLY


class TestOnSubstrate:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_verified_across_replication_factors(self, k):
        n, m = 5, 6
        variables = [f"x{i}" for i in range(m)]
        rmap = ReplicationMap.round_robin(variables, n, k)
        for seed in range(2):
            cfg = WorkloadConfig(n_processes=n, ops_per_process=10,
                                 n_variables=m, write_fraction=0.7, seed=seed)
            sched = random_partial_schedule(cfg, rmap)
            r = run_schedule(partial_factory(rmap), n, sched,
                             latency=SeededLatency(seed, dist="exponential",
                                                   mean=2.0))
            report = check_run(r)
            assert report.ok, (k, seed, report.summary())

    def test_traffic_scales_with_replication_factor(self):
        n, m = 5, 5
        variables = [f"x{i}" for i in range(m)]
        msgs = {}
        for k in (2, 5):
            rmap = ReplicationMap.round_robin(variables, n, k)
            cfg = WorkloadConfig(n_processes=n, ops_per_process=10,
                                 write_fraction=1.0, seed=4)
            sched = random_partial_schedule(cfg, rmap)
            r = run_schedule(partial_factory(rmap), n, sched,
                             latency=ConstantLatency(1.0))
            assert check_run(r).ok
            msgs[k] = r.messages_sent
        assert msgs[2] < msgs[5]

    def test_full_map_matches_class_p_liveness(self):
        """k = n degenerates to full replication: every write applied
        everywhere."""
        n = 3
        variables = ["x0", "x1"]
        rmap = ReplicationMap.full(variables, n)
        cfg = WorkloadConfig(n_processes=n, ops_per_process=8,
                             n_variables=2, write_fraction=0.8, seed=6)
        sched = random_partial_schedule(cfg, rmap)
        r = run_schedule(partial_factory(rmap), n, sched,
                         latency=SeededLatency(6))
        for wid in r.trace.writes_issued():
            for p in range(n):
                assert r.trace.apply_event(p, wid) is not None

    def test_no_unnecessary_delays(self):
        """The projected optimality: delays only for missing *held*
        predecessors."""
        n, m = 4, 4
        variables = [f"x{i}" for i in range(m)]
        rmap = ReplicationMap.round_robin(variables, n, 2)
        for seed in range(3):
            cfg = WorkloadConfig(n_processes=n, ops_per_process=12,
                                 write_fraction=0.8, seed=seed)
            sched = random_partial_schedule(cfg, rmap)
            r = run_schedule(partial_factory(rmap), n, sched,
                             latency=SeededLatency(seed, dist="exponential",
                                                   mean=2.0))
            report = check_run(r)
            assert report.ok
            assert not report.unnecessary_delays, report.summary()
