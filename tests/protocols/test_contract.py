"""Protocol contract tests: invariants every registered protocol obeys.

Run against everything in ``repro.protocols.PROTOCOLS``, so adding a
protocol to the registry automatically subjects it to the battery:
wid allocation, classify purity, read-your-writes, store hygiene, and
full-substrate verification on a canonical workload.
"""

import copy

import pytest

from repro.analysis import check_run
from repro.model.operations import BOTTOM, WriteId
from repro.protocols import PROTOCOLS
from repro.protocols.base import Disposition, UpdateMessage
from repro.sim import SeededLatency, run_schedule
from repro.workloads import WorkloadConfig, random_schedule

ALL = sorted(PROTOCOLS)


@pytest.fixture(params=ALL)
def proto_name(request):
    return request.param


def make(proto_name, i=1, n=3):
    return PROTOCOLS[proto_name](i, n)


class TestConstruction:
    def test_name_matches_registry_key(self, proto_name):
        p = make(proto_name)
        assert p.name == proto_name

    def test_rejects_bad_process_ids(self, proto_name):
        cls = PROTOCOLS[proto_name]
        with pytest.raises(ValueError):
            cls(3, 3)
        with pytest.raises(ValueError):
            cls(-1, 3)

    def test_single_process_works(self, proto_name):
        p = PROTOCOLS[proto_name](0, 1)
        p.bootstrap()
        p.write("x", 1)
        assert p.read("x").value == 1


class TestWriteContract:
    def test_wids_are_consecutive(self, proto_name):
        p = make(proto_name)
        wids = [p.write("x", k).wid for k in range(5)]
        assert wids == [WriteId(1, s) for s in range(1, 6)]

    def test_read_your_writes(self, proto_name):
        """Every protocol lets a process observe its own latest write
        (directly or via forwarding)."""
        p = make(proto_name)
        p.write("x", "mine")
        out = p.read("x")
        assert out.value == "mine"
        assert out.read_from == WriteId(1, 1)

    def test_unwritten_reads_bottom(self, proto_name):
        p = make(proto_name)
        assert p.read("zzz").value is BOTTOM
        assert p.read("zzz").read_from is None

    def test_writes_issued_counter(self, proto_name):
        p = make(proto_name)
        p.write("a", 1)
        p.write("b", 2)
        assert p.writes_issued == 2


class TestClassifyPurity:
    def test_classify_is_side_effect_free(self, proto_name):
        """classify() is called repeatedly on buffered messages; it must
        not mutate protocol state (compared via debug_state + store)."""
        sender = make(proto_name, i=0)
        receiver = make(proto_name, i=1)
        outcome = sender.write("x", 1)
        updates = [
            o.message for o in outcome.outgoing
            if isinstance(o.message, UpdateMessage)
        ]
        if not updates:
            pytest.skip("protocol does not emit update messages")
        msg = updates[0]
        before_state = copy.deepcopy(receiver.debug_state())
        before_store = receiver.store_snapshot()
        d1 = receiver.classify(msg)
        d2 = receiver.classify(msg)
        assert d1 == d2
        assert receiver.debug_state() == before_state
        assert receiver.store_snapshot() == before_store

    def test_apply_after_classify_apply(self, proto_name):
        sender = make(proto_name, i=0)
        receiver = make(proto_name, i=1)
        outcome = sender.write("x", 99)
        updates = [
            o.message for o in outcome.outgoing
            if isinstance(o.message, UpdateMessage)
        ]
        if not updates:
            pytest.skip("protocol does not emit update messages")
        msg = updates[0]
        if receiver.classify(msg) is Disposition.APPLY:
            receiver.apply_update(msg)
            assert receiver.store_get("x") == (99, WriteId(0, 1))


class TestEndToEnd:
    def test_canonical_workload_verified(self, proto_name):
        cfg = WorkloadConfig(n_processes=4, ops_per_process=12,
                             write_fraction=0.6, seed=77)
        r = run_schedule(proto_name, 4, random_schedule(cfg),
                         latency=SeededLatency(77, dist="exponential",
                                               mean=1.5))
        report = check_run(r)
        assert report.ok, report.summary()

    def test_in_class_p_flag_matches_liveness(self, proto_name):
        """Protocols claiming class-𝒫 membership must apply every write
        at every process; WS variants must account for the shortfall."""
        cfg = WorkloadConfig(n_processes=3, ops_per_process=10,
                             write_fraction=0.9, n_variables=2, seed=5)
        r = run_schedule(proto_name, 3, random_schedule(cfg),
                         latency=SeededLatency(5))
        if r.in_class_p:
            for wid in r.trace.writes_issued():
                for k in range(3):
                    assert r.trace.apply_event(k, wid) is not None
        else:
            missing = r.stat_total("skipped") + r.stat_total("suppressed") * 2
            assert r.remote_applies + missing >= r.writes_issued * 2

    def test_deterministic_replay(self, proto_name):
        cfg = WorkloadConfig(n_processes=3, ops_per_process=8, seed=8)
        sched = random_schedule(cfg)
        runs = [
            run_schedule(proto_name, 3, sched, latency=SeededLatency(8))
            for _ in range(2)
        ]
        assert ([str(e) for e in runs[0].trace.events]
                == [str(e) for e in runs[1].trace.events])
