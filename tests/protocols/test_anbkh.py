"""Unit tests for the ANBKH baseline, including the false-causality
behaviour of Section 3.6 / Figure 3."""

import pytest

from repro.core.optp import OptPProtocol
from repro.model.operations import BOTTOM, WriteId
from repro.protocols.anbkh import ANBKHProtocol, vt_of
from repro.protocols.base import BROADCAST, Disposition


def the_message(outcome):
    assert len(outcome.outgoing) == 1
    assert outcome.outgoing[0].dest == BROADCAST
    return outcome.outgoing[0].message


def make_three(cls=ANBKHProtocol):
    return [cls(i, 3) for i in range(3)]


class TestBasics:
    def test_write_stamps_fidge_mattern(self):
        p0 = ANBKHProtocol(0, 3)
        m1 = the_message(p0.write("x", 1))
        assert vt_of(m1) == (1, 0, 0)
        m2 = the_message(p0.write("y", 2))
        assert vt_of(m2) == (2, 0, 0)

    def test_local_apply(self):
        p0 = ANBKHProtocol(0, 3)
        p0.write("x", 1)
        assert p0.store_get("x") == (1, WriteId(0, 1))
        assert p0.vc == [1, 0, 0]

    def test_read_is_local_and_does_not_touch_vc(self):
        p0, p1, _ = make_three()
        m = the_message(p0.write("x", 1))
        p1.apply_update(m)
        vc_before = list(p1.vc)
        out = p1.read("x")
        assert out.value == 1 and out.read_from == WriteId(0, 1)
        assert p1.vc == vc_before

    def test_read_unwritten(self):
        p = ANBKHProtocol(0, 2)
        out = p.read("z")
        assert out.value is BOTTOM and out.read_from is None

    def test_same_sender_fifo_enforced(self):
        p0, p1, _ = make_three()
        m1 = the_message(p0.write("x", 1))
        m2 = the_message(p0.write("x", 2))
        assert p1.classify(m2) is Disposition.BUFFER
        assert p1.classify(m1) is Disposition.APPLY
        p1.apply_update(m1)
        assert p1.classify(m2) is Disposition.APPLY

    def test_debug_state(self):
        p = ANBKHProtocol(1, 2)
        p.write("x", 1)
        assert p.debug_state() == {"vc": (0, 1)}


class TestCausalDelivery:
    def test_waits_for_causal_predecessor(self):
        p0, p1, p2 = make_three()
        m_a = the_message(p0.write("x1", "a"))
        p1.apply_update(m_a)
        m_b = the_message(p1.write("x2", "b"))
        assert p2.classify(m_b) is Disposition.BUFFER
        p2.apply_update(m_a)
        assert p2.classify(m_b) is Disposition.APPLY


class TestFalseCausality:
    """The Figure 3 scenario: ANBKH delays what OptP would not."""

    def _figure3_messages(self, cls):
        """p0 writes a then c; p1 applies BOTH (but only reads a), then
        writes b.  Returns (m_a, m_c, m_b) stamped by protocol ``cls``."""
        p0, p1, _ = make_three(cls)
        m_a = the_message(p0.write("x1", "a"))
        m_c = the_message(p0.write("x1", "c"))
        p1.apply_update(m_a)
        p1.read("x1")          # reads a (read-from edge)
        p1.apply_update(m_c)   # c applied but never read
        m_b = the_message(p1.write("x2", "b"))
        return m_a, m_c, m_b

    def test_anbkh_delays_b_until_c(self):
        m_a, m_c, m_b = self._figure3_messages(ANBKHProtocol)
        # VT(b) = [2,1,0]: it counts c although b ||co c.
        assert vt_of(m_b) == (2, 1, 0)
        p2 = ANBKHProtocol(2, 3)
        p2.apply_update(m_a)
        # b arrives before c: ANBKH buffers (false causality!)
        assert p2.classify(m_b) is Disposition.BUFFER
        p2.apply_update(m_c)
        assert p2.classify(m_b) is Disposition.APPLY

    def test_optp_does_not_delay_b(self):
        """Identical run under OptP: no delay, because Write_co tracks
        ->co (b's vector ignores the unread c)."""
        from repro.core.optp import write_co_of

        m_a, m_c, m_b = self._figure3_messages(OptPProtocol)
        assert write_co_of(m_b) == (1, 1, 0)  # no trace of c
        p2 = OptPProtocol(2, 3)
        p2.apply_update(m_a)
        assert p2.classify(m_b) is Disposition.APPLY

    def test_enabling_superset(self):
        """X_ANBKH(apply(b)) strictly contains X_co-safe(apply(b)):
        operationally, ANBKH requires {a, c} applied, OptP only {a}."""
        m_a, m_c, m_b = self._figure3_messages(ANBKHProtocol)
        p2 = ANBKHProtocol(2, 3)
        # with neither a nor c: buffer (both protocols agree)
        assert p2.classify(m_b) is Disposition.BUFFER
        p2.apply_update(m_a)
        assert p2.classify(m_b) is Disposition.BUFFER  # ANBKH still waits
        p2.apply_update(m_c)
        assert p2.classify(m_b) is Disposition.APPLY


class TestNeverDiscards:
    def test_discard_not_supported(self):
        p = ANBKHProtocol(0, 2)
        m = the_message(p.write("x", 1))
        with pytest.raises(NotImplementedError):
            p.discard_update(m)

    def test_no_control_messages(self):
        from repro.protocols.base import ControlMessage

        p = ANBKHProtocol(0, 2)
        with pytest.raises(NotImplementedError):
            p.on_control(ControlMessage(sender=1, kind="x"))

    def test_bootstrap_empty(self):
        assert ANBKHProtocol(0, 2).bootstrap() == ()
