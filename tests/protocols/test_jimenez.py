"""Unit tests for the Jimenez token protocol (sender-side WS)."""

import pytest

from repro.model.operations import WriteId
from repro.protocols.base import BROADCAST, ControlMessage
from repro.protocols.jimenez import (
    BATCH_KIND,
    TOKEN_KIND,
    JimenezTokenProtocol,
)


def make(n=3):
    return [JimenezTokenProtocol(i, n) for i in range(n)]


def split_outgoing(outgoing):
    """Partition outgoing into (batches, tokens)."""
    batches = [o for o in outgoing if o.message.kind == BATCH_KIND]
    tokens = [o for o in outgoing if o.message.kind == TOKEN_KIND]
    return batches, tokens


class TestBootstrap:
    def test_p0_starts_token(self):
        p0, p1, p2 = make()
        out = list(p0.bootstrap())
        batches, tokens = split_outgoing(out)
        assert len(batches) == 1 and batches[0].dest == BROADCAST
        assert batches[0].message.payload["writes"] == ()
        assert len(tokens) == 1 and tokens[0].dest == 1
        assert tokens[0].message.payload["batch_seq"] == 1
        assert p1.bootstrap() == () and p2.bootstrap() == ()

    def test_single_process_no_token(self):
        p = JimenezTokenProtocol(0, 1)
        assert p.bootstrap() == ()
        p.write("x", 1)
        assert p.pending == {}
        assert p.store_get("x") == (1, WriteId(0, 1))


class TestWrites:
    def test_write_applies_locally_and_parks(self):
        p0 = JimenezTokenProtocol(0, 3)
        out = p0.write("x", 1)
        assert out.outgoing == ()
        assert p0.store_get("x") == (1, WriteId(0, 1))
        assert p0.pending == {"x": (WriteId(0, 1), 1)}

    def test_same_variable_suppression(self):
        p0 = JimenezTokenProtocol(0, 3)
        p0.write("x", 1)
        p0.write("x", 2)
        p0.write("x", 3)
        assert p0.suppressed == 2
        assert p0.pending == {"x": (WriteId(0, 3), 3)}
        assert p0.missing_applies() == 4  # 2 suppressed * (n-1)

    def test_pending_preserves_issue_order_of_survivors(self):
        p0 = JimenezTokenProtocol(0, 3)
        p0.write("x", 1)
        p0.write("y", 2)
        p0.write("x", 3)  # re-inserted after y
        assert list(p0.pending.keys()) == ["y", "x"]

    def test_read_returns_local(self):
        p0 = JimenezTokenProtocol(0, 3)
        p0.write("x", 1)
        assert p0.read("x").value == 1


class TestTokenFlow:
    def test_token_flushes_pending(self):
        p0, p1, _ = make()
        p1.write("x", 10)
        out = list(p1.on_control(ControlMessage(sender=0, kind=TOKEN_KIND,
                                                payload={"batch_seq": 0})))
        batches, tokens = split_outgoing(out)
        assert len(batches) == 1
        writes = batches[0].message.payload["writes"]
        assert writes == ((WriteId(1, 1), "x", 10),)
        assert p1.pending == {}
        assert tokens[0].dest == 2
        assert tokens[0].message.payload["batch_seq"] == 1

    def test_batches_apply_in_order(self):
        p2 = JimenezTokenProtocol(2, 3)
        applied = []
        p2.bind_recorder(lambda wid, var, val: applied.append((wid, var, val)))
        b0 = ControlMessage(sender=0, kind=BATCH_KIND,
                            payload={"batch_seq": 0,
                                     "writes": ((WriteId(0, 1), "x", 1),)})
        b1 = ControlMessage(sender=1, kind=BATCH_KIND,
                            payload={"batch_seq": 1,
                                     "writes": ((WriteId(1, 1), "y", 2),)})
        # out of order: b1 first -> buffered, counted as delayed
        p2.on_control(b1)
        assert applied == []
        assert p2.batch_delays == 1
        p2.on_control(b0)
        assert applied == [(WriteId(0, 1), "x", 1), (WriteId(1, 1), "y", 2)]
        assert p2.store_get("y") == (2, WriteId(1, 1))

    def test_own_batch_not_reapplied(self):
        p0 = JimenezTokenProtocol(0, 3)
        applied = []
        p0.bind_recorder(lambda *a: applied.append(a))
        p0.write("x", 1)
        p0.on_control(ControlMessage(sender=2, kind=TOKEN_KIND,
                                     payload={"batch_seq": 0}))
        assert applied == []  # own writes recorded at write time, not here
        assert p0.next_batch == 1

    def test_token_outruns_batch(self):
        """Token reaches p1 before p0's batch 0: p1 flushes batch 1 but
        holds it until batch 0 arrives."""
        p1 = JimenezTokenProtocol(1, 3)
        p1.write("y", 5)
        out = list(p1.on_control(ControlMessage(sender=0, kind=TOKEN_KIND,
                                                payload={"batch_seq": 1})))
        batches, tokens = split_outgoing(out)
        assert batches[0].message.payload["batch_seq"] == 1
        assert p1.next_batch == 0        # own batch buffered
        b0 = ControlMessage(sender=0, kind=BATCH_KIND,
                            payload={"batch_seq": 0, "writes": ()})
        p1.on_control(b0)
        assert p1.next_batch == 2        # drained through own batch

    def test_duplicate_batch_rejected(self):
        p2 = JimenezTokenProtocol(2, 3)
        b0 = ControlMessage(sender=0, kind=BATCH_KIND,
                            payload={"batch_seq": 0, "writes": ()})
        p2.on_control(b0)
        with pytest.raises(AssertionError):
            p2.on_control(b0)

    def test_unknown_control_kind(self):
        p = JimenezTokenProtocol(0, 2)
        with pytest.raises(ValueError):
            p.on_control(ControlMessage(sender=1, kind="bogus"))


class TestStats:
    def test_stats_keys(self):
        p = JimenezTokenProtocol(0, 3)
        p.write("x", 1)
        p.write("x", 2)
        s = p.stats()
        assert s["suppressed"] == 1
        assert s["batches_sent"] == 0
        assert "batch_delays" in s

    def test_debug_state(self):
        p = JimenezTokenProtocol(0, 3)
        p.write("x", 1)
        st = p.debug_state()
        assert st["suppressed"] == 0 and st["next_batch"] == 0
        assert "x" in st["pending"]
