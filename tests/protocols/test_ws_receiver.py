"""Unit tests for the receiver-side writing-semantics protocol."""

import pytest

from repro.model.operations import WriteId
from repro.protocols.base import BROADCAST, Disposition
from repro.protocols.ws_receiver import WSReceiverProtocol


def the_message(outcome):
    assert len(outcome.outgoing) == 1
    return outcome.outgoing[0].message


def make(n=3):
    return [WSReceiverProtocol(i, n) for i in range(n)]


class TestDegeneratesToOptP:
    """With no overwrite opportunities the behaviour equals OptP's."""

    def test_in_order_apply(self):
        p0, p1, _ = make()
        m1 = the_message(p0.write("x", 1))
        m2 = the_message(p0.write("y", 2))
        assert p1.classify(m1) is Disposition.APPLY
        p1.apply_update(m1)
        assert p1.classify(m2) is Disposition.APPLY
        p1.apply_update(m2)
        assert p1.store_get("x") == (1, WriteId(0, 1))
        assert p1.store_get("y") == (2, WriteId(0, 2))
        assert p1.skipped == 0 and p1.discarded == 0

    def test_different_variable_gap_buffers(self):
        """Missing predecessor on a *different* variable: no overwrite,
        must buffer exactly like OptP."""
        p0, p1, _ = make()
        m1 = the_message(p0.write("x", 1))
        m2 = the_message(p0.write("y", 2))
        assert p1.classify(m2) is Disposition.BUFFER
        p1.apply_update(m1)
        assert p1.classify(m2) is Disposition.APPLY

    def test_concurrent_writes_apply_freely(self):
        p0, p1, p2 = make()
        m_a = the_message(p0.write("x", "a"))
        m_b = the_message(p1.write("y", "b"))
        assert p2.classify(m_b) is Disposition.APPLY
        p2.apply_update(m_b)
        assert p2.classify(m_a) is Disposition.APPLY


class TestOverwriting:
    def test_same_variable_chain_skips(self):
        """w(x)1 ->po w(x)2: receiving only the second applies it and
        skips the first (the canonical overwrite)."""
        p0, p1, _ = make()
        m1 = the_message(p0.write("x", 1))
        m2 = the_message(p0.write("x", 2))
        assert p1.classify(m2) is Disposition.APPLY  # overwrite applies
        p1.apply_update(m2)
        assert p1.skipped == 1
        assert p1.store_get("x") == (2, WriteId(0, 2))
        # late arrival of m1 is discarded
        assert p1.classify(m1) is Disposition.DISCARD
        p1.discard_update(m1)
        assert p1.discarded == 1
        assert p1.stats() == {"skipped": 1, "discarded": 1}
        assert p1.missing_applies() == 1

    def test_long_same_variable_chain(self):
        p0, p1, _ = make()
        msgs = [the_message(p0.write("x", k)) for k in range(5)]
        assert p1.classify(msgs[-1]) is Disposition.APPLY
        p1.apply_update(msgs[-1])
        assert p1.skipped == 4
        assert p1.store_get("x")[0] == 4
        for m in msgs[:-1]:
            assert p1.classify(m) is Disposition.DISCARD

    def test_interposed_different_variable_blocks_overwrite(self):
        """w(x)1 ->po w(y)9 ->po w(x)2: receiving only w(x)2 must BUFFER
        (the Raynal-Ahamad precondition: no interposed write on another
        variable)."""
        p0, p1, _ = make()
        m1 = the_message(p0.write("x", 1))
        my = the_message(p0.write("y", 9))
        m2 = the_message(p0.write("x", 2))
        assert p1.classify(m2) is Disposition.BUFFER
        # after y arrives it still buffers (x1 missing, and x1 IS
        # overwritable... but y itself is not applicable before x1):
        assert p1.classify(my) is Disposition.BUFFER
        # x1 arrives: everything drains in order
        assert p1.classify(m1) is Disposition.APPLY
        p1.apply_update(m1)
        assert p1.classify(my) is Disposition.APPLY
        p1.apply_update(my)
        assert p1.classify(m2) is Disposition.APPLY
        p1.apply_update(m2)
        assert p1.skipped == 0

    def test_cross_process_same_variable_overwrite(self):
        """p0 writes x; p1 reads it and writes x again.  A receiver
        getting only p1's write may skip p0's."""
        p0, p1, p2 = make()
        m1 = the_message(p0.write("x", "old"))
        p1.apply_update(m1)
        p1.read("x")
        m2 = the_message(p1.write("x", "new"))
        assert p2.classify(m2) is Disposition.APPLY
        p2.apply_update(m2)
        assert p2.skipped == 1
        assert p2.store_get("x") == ("new", WriteId(1, 1))
        assert p2.classify(m1) is Disposition.DISCARD

    def test_cross_process_different_variable_no_overwrite(self):
        p0, p1, p2 = make()
        m1 = the_message(p0.write("x", "vx"))
        p1.apply_update(m1)
        p1.read("x")
        m2 = the_message(p1.write("y", "vy"))
        assert p2.classify(m2) is Disposition.BUFFER
        p2.apply_update(m1)
        assert p2.classify(m2) is Disposition.APPLY


class TestVarPastBookkeeping:
    def test_var_past_consistent_with_write_co(self):
        """Invariant: per-variable past counts partition Write_co."""
        p0, p1, _ = make()
        m1 = the_message(p0.write("x", 1))
        m2 = the_message(p0.write("y", 2))
        p1.apply_update(m1)
        p1.apply_update(m2)
        p1.read("x")
        p1.read("y")
        p1.write("x", 3)
        total = [0] * 3
        for vec in p1.var_past.values():
            for t, v in enumerate(vec):
                total[t] += v
        assert total == p1.write_co

    def test_read_merges_var_past(self):
        p0, p1, p2 = make()
        m1 = the_message(p0.write("x", 1))
        m2 = the_message(p0.write("x", 2))
        p1.apply_update(m1)
        p1.apply_update(m2)
        p1.read("x")
        assert p1.var_past["x"] == [2, 0, 0]
        # p1's next write on a different variable carries VP with x-info
        m3 = the_message(p1.write("y", 3))
        vp = dict(m3.payload["var_past"])
        assert vp["x"] == (2, 0, 0)
        assert vp["y"] == (0, 1, 0)

    def test_skip_then_later_chain_stays_consistent(self):
        """After a skip, subsequent messages from the same sender apply
        in order without double-count."""
        p0, p1, _ = make()
        m1 = the_message(p0.write("x", 1))
        m2 = the_message(p0.write("x", 2))
        m3 = the_message(p0.write("y", 3))
        p1.apply_update(m2)  # skips m1
        assert p1.apply_vec[0] == 2
        assert p1.classify(m3) is Disposition.APPLY
        p1.apply_update(m3)
        assert p1.apply_vec[0] == 3
        assert p1.classify(m1) is Disposition.DISCARD
