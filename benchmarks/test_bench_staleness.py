"""Q9 (extension): end-to-end visibility latency across all protocols.

Write delays count protocol decisions; visibility latency (issue ->
apply at each remote replica) is what clients feel.  On identical
message schedules the transit term is fixed, so OptP's optimality shows
up as the minimum buffering term among the safe full-replication
protocols; propagation-restructuring protocols (token, gossip) trade
the transit term instead.
"""

import pytest

from repro.analysis.staleness import visibility_report
from repro.sim import SeededLatency, run_schedule
from repro.workloads import WorkloadConfig, random_schedule

PROTOCOLS = ["optp", "anbkh", "sequencer", "jimenez-token", "gossip-optp"]
SEEDS = (0, 1, 2)


def collect():
    out = {}
    for proto in PROTOCOLS:
        vis_mean = buf_total = 0.0
        count = 0
        for seed in SEEDS:
            cfg = WorkloadConfig(n_processes=5, ops_per_process=12,
                                 write_fraction=0.7, seed=seed)
            r = run_schedule(proto, 5, random_schedule(cfg),
                             latency=SeededLatency(seed, dist="exponential",
                                                   mean=1.0))
            rep = visibility_report(r)
            vis_mean += rep.visibility.mean * rep.visibility.count
            buf_total += rep.buffering.mean * rep.buffering.count
            count += rep.visibility.count
        out[proto] = dict(
            mean_visibility=vis_mean / max(1, count),
            total_buffering=buf_total,
        )
    return out


def test_bench_q9_visibility(benchmark):
    stats = benchmark.pedantic(collect, rounds=1, iterations=1)
    # among the broadcast protocols, OptP's buffering is minimal
    assert stats["optp"]["total_buffering"] <= stats["anbkh"]["total_buffering"]
    assert stats["optp"]["total_buffering"] <= stats["sequencer"]["total_buffering"]
    # propagation-restructured protocols pay in end-to-end visibility
    assert stats["jimenez-token"]["mean_visibility"] > stats["optp"]["mean_visibility"]
    assert stats["gossip-optp"]["mean_visibility"] > stats["optp"]["mean_visibility"]
    for proto, s in stats.items():
        print(f"\n{proto:<14} visibility={s['mean_visibility']:.2f} "
              f"buffering-total={s['total_buffering']:.2f}")
