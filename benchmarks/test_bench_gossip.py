"""Q7 (extension): broadcast vs anti-entropy propagation for OptP.

Footnote 5 says the propagation mechanism does not matter *for
correctness*; this benchmark shows what it does to the performance
envelope: gossip trades per-write broadcast fanout for periodic digest
traffic and round-quantized propagation latency.  Both variants are
verified write-delay optimal on every measured run.
"""

import pytest

from repro.analysis import check_run
from repro.sim import SeededLatency, run_schedule
from repro.workloads import WorkloadConfig, random_schedule


def _run(proto, seed, n=4, ops=12):
    cfg = WorkloadConfig(n_processes=n, ops_per_process=ops,
                         write_fraction=0.7, seed=seed)
    return run_schedule(
        proto, n, random_schedule(cfg),
        latency=SeededLatency(seed, dist="exponential", mean=0.8),
    )


def test_bench_q7_gossip_vs_broadcast(benchmark):
    def run():
        out = {}
        for proto in ("optp", "gossip-optp"):
            msgs = delays = 0
            duration = 0.0
            for seed in (0, 1, 2):
                r = _run(proto, seed)
                report = check_run(r)
                assert report.ok, report.summary()
                assert not report.unnecessary_delays  # Thm 4 holds for both
                msgs += r.messages_sent
                delays += report.total_delays
                duration += r.duration
            out[proto] = dict(msgs=msgs, delays=delays, duration=duration)
        return out

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    # gossip quantizes propagation into rounds: runs take longer...
    assert stats["gossip-optp"]["duration"] > stats["optp"]["duration"]
    # ...and anti-entropy chatter costs messages (digests + duplicates)
    assert stats["gossip-optp"]["msgs"] > stats["optp"]["msgs"]
    print(f"\nbroadcast: {stats['optp']}")
    print(f"gossip:    {stats['gossip-optp']}")


def test_bench_q7_gossip_interval_tradeoff(benchmark):
    """Faster gossip rounds buy propagation latency with traffic."""
    from repro.protocols.gossip import GossipOptPProtocol

    class FastGossip(GossipOptPProtocol):
        name = "gossip-optp"
        timer_interval = 0.25

    class SlowGossip(GossipOptPProtocol):
        name = "gossip-optp"
        timer_interval = 2.0

    def run():
        out = {}
        for label, factory in (("fast", FastGossip), ("slow", SlowGossip)):
            cfg = WorkloadConfig(n_processes=4, ops_per_process=10,
                                 write_fraction=0.7, seed=3)
            r = run_schedule(factory, 4, random_schedule(cfg),
                             latency=SeededLatency(3, dist="exponential",
                                                   mean=0.5))
            assert check_run(r).ok
            out[label] = dict(msgs=r.messages_sent, duration=r.duration)
        return out

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats["fast"]["duration"] < stats["slow"]["duration"]
    assert stats["fast"]["msgs"] > stats["slow"]["msgs"]
    print(f"\nfast rounds: {stats['fast']}  slow rounds: {stats['slow']}")
