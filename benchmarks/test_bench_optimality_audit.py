"""Q2: Theorem 4 audited at scale.

Every write delay OptP executes is *necessary* (some causal predecessor
was genuinely missing at receipt), across workload shapes and latency
regimes; ANBKH's unnecessary-delay count is the measured price of false
causality.  The benchmark also measures the audit itself (it is the
most expensive analyzer: ->co closure + per-delay witness search).
"""

import pytest

from repro.analysis import check_run
from repro.analysis.checker import audit_delays
from repro.sim import SeededLatency, run_schedule
from repro.workloads import WorkloadConfig, random_schedule


def _runs(proto, n=6, ops=15, seeds=(0, 1, 2, 3)):
    out = []
    for seed in seeds:
        cfg = WorkloadConfig(
            n_processes=n, ops_per_process=ops, write_fraction=0.7,
            n_variables=3, seed=seed,
        )
        r = run_schedule(
            proto, n, random_schedule(cfg),
            latency=SeededLatency(seed, dist="exponential", mean=2.0),
        )
        out.append(r)
    return out


def test_bench_q2_optp_audit(benchmark):
    runs = _runs("optp")

    def audit_all():
        return [audit_delays(r) for r in runs]

    audits = benchmark(audit_all)
    total = sum(len(a) for a in audits)
    unnecessary = sum(1 for a in audits for d in a if not d.necessary)
    assert total > 0, "workload produced no delays; sweep is vacuous"
    assert unnecessary == 0  # Theorem 4
    print(f"\noptp: {total} delays, all necessary")


def test_bench_q2_anbkh_audit(benchmark):
    runs = _runs("anbkh")

    def audit_all():
        return [audit_delays(r) for r in runs]

    audits = benchmark(audit_all)
    total = sum(len(a) for a in audits)
    unnecessary = sum(1 for a in audits for d in a if not d.necessary)
    assert total > 0
    # ANBKH may or may not hit false causality on a given seed family,
    # but across this one it reliably does; every unnecessary delay has
    # no witness by construction.
    assert unnecessary > 0
    print(f"\nanbkh: {total} delays, {unnecessary} unnecessary")


def test_bench_q2_full_check(benchmark):
    """Cost of the complete checker (legality + safety + liveness +
    audit + characterization) on one mid-size verified OptP run."""
    cfg = WorkloadConfig(
        n_processes=6, ops_per_process=25, write_fraction=0.6, seed=7
    )
    r = run_schedule(
        "optp", 6, random_schedule(cfg),
        latency=SeededLatency(7), record_state=True,
    )
    report = benchmark(check_run, r)
    assert report.ok
    assert report.characterization_ok is True
    assert not report.unnecessary_delays
