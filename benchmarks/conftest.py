"""Shared fixtures for the benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark regenerates a paper artifact (T1/T2/F1-F7) or a
quantitative experiment (Q1-Q4) and *asserts the paper's qualitative
claims* on the measured result -- a benchmark that silently produced
wrong numbers would fail, not mislead.
"""

import pytest


def pytest_collection_modifyitems(config, items):
    # Benchmarks are ordered by experiment id for readable reports.
    items.sort(key=lambda item: item.nodeid)
