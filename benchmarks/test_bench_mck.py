"""Model-checker throughput benchmark + BENCH_mck.json report.

Explores the ``triangle`` workload (12k+ states) exhaustively for both
OptP and ANBKH, times the runs with ``time.perf_counter`` (usable under
``--benchmark-disable``), asserts the qualitative separation the
checker exists to establish -- OptP clean and optimal on every
interleaving, ANBKH safe but with unnecessary delays -- and writes
``BENCH_mck.json`` at the repo root with states/second and the
partial-order-reduction prune ratio.
"""

import json
import time
from pathlib import Path

from repro.mck import CheckConfig, check, workload_by_name

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_mck.json"

WORKLOAD = "triangle"
STATES_PER_SEC_FLOOR = 200.0  # conservative: ~1.4k/s on the dev box


def explore(protocol):
    t0 = time.perf_counter()
    result = check(CheckConfig(protocol=protocol,
                               workload=workload_by_name(WORKLOAD)))
    return result, time.perf_counter() - t0


def test_bench_mck_optp_exhaustive(benchmark):
    result = benchmark.pedantic(
        lambda: check(CheckConfig(protocol="optp",
                                  workload=workload_by_name(WORKLOAD))),
        rounds=1, iterations=1)
    assert result.ok and result.states >= 1000


def test_mck_throughput_report():
    r_optp, optp_s = explore("optp")
    r_anbkh, anbkh_s = explore("anbkh")

    # the claims the numbers hang off of
    assert r_optp.ok and r_optp.unnecessary_delays == 0
    assert r_anbkh.ok and r_anbkh.unnecessary_delays > 0
    assert r_optp.states >= 1000 and r_anbkh.states >= 1000

    def row(result, wall):
        explored = result.transitions + result.prunes["sleep"]
        return {
            "ok": result.ok,
            "states": result.states,
            "transitions": result.transitions,
            "terminals": dict(result.terminals),
            "unnecessary_delays": result.unnecessary_delays,
            "wall_s": round(wall, 6),
            "states_per_s": round(result.states / wall, 1),
            "sleep_set_prunes": result.prunes["sleep"],
            "cycle_prunes": result.prunes["cycle"],
            # fraction of candidate transitions POR skipped outright
            "prune_ratio": round(
                result.prunes["sleep"] / explored, 4
            ) if explored else 0.0,
        }

    report = {
        "bench": "exhaustive interleaving model checker",
        "workload": WORKLOAD,
        "mode": "exhaustive",
        "optp": row(r_optp, optp_s),
        "anbkh": row(r_anbkh, anbkh_s),
    }
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")

    for name in ("optp", "anbkh"):
        assert report[name]["states_per_s"] >= STATES_PER_SEC_FLOOR, report
