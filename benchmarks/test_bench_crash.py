"""Crash-recovery benchmark: model-checked crash coverage + a live
kill-and-recover drill, with the recovery duration as the headline.

Two measurements, mirroring the fault-tolerance PR's claims:

- **Exhaustive crash checking** -- OptP under the ``crash`` adversary
  on two workloads: every placement of a crash + recovery across the
  full interleaving space, zero violations, with the deterministic
  state counts pinned exactly (a count drift means the crash adversary
  changed shape).
- **Serve chaos drill** -- a 3-replica durable deployment under load,
  the middle replica SIGKILLed and restarted mid-run.  Reports the
  victim's WAL+snapshot replay time (``recovery_us``), the wall-clock
  kill-to-ready window, and the throughput that rode through the
  outage; the merged trace must replay through every conformance
  oracle with exact-zero problems.

``test_crash_recovery_report`` writes ``BENCH_crash.json`` at the repo
root (wired into ``repro-dsm bench compare`` via
``artifacts/bench_baseline.json``).  The recovery-time bar is generous
(2 s for a sub-second WAL) because CI containers stall arbitrarily;
the exact-zero conformance and violation gates apply everywhere.
"""

import json
import os
from pathlib import Path

from repro.mck import CheckConfig, check, parse_faults, workload_by_name
from repro.serve import LoadgenConfig
from repro.serve.harness import serve_chaos

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_crash.json"

MCK_WORKLOADS = ("pair", "chain")
CHAOS_SECONDS = 3.0
CHAOS_RATE = 300.0
#: replaying a few seconds of WAL must be far under this on any host.
RECOVERY_US_CEILING = 2_000_000


def _mck_section():
    out = {}
    for workload in MCK_WORKLOADS:
        r = check(CheckConfig(
            protocol="optp",
            workload=workload_by_name(workload),
            faults=parse_faults("crash"),
        ))
        assert r.ok, [str(v.finding) for v in r.violations]
        assert not r.state_limit_hit
        out[workload] = {
            "states": r.states,
            "violations": len(r.violations),
            "stuck": r.terminals["stuck"],
        }
    return out


def _chaos_section(rundir):
    cfg = LoadgenConfig(batch=8, pipeline=2, read_fraction=0.7,
                        keys=8, rate=CHAOS_RATE)
    report = serve_chaos(
        "optp",
        group_size=3,
        rundir=rundir,
        duration=CHAOS_SECONDS,
        kill_after=1.0,
        down_time=0.5,
        victim=1,
        workers=1,
        record=True,
        verify=True,
        loadgen=cfg,
    )
    group = report["conformance"]["groups"][0]
    return {
        "recovered": report["recovered"],
        "recovery_us": report["recovery_us"],
        "restart_wall_s": report["restart_wall_s"],
        "wal_records": report["wal_records"],
        "ops": report["load"]["ops"],
        "ops_per_sec": report["load"]["ops_per_sec"],
        "conformance_ok": report["conformance"]["ok"],
        "checker_problems": len(group["checker_problems"]),
        "invariant_findings": len(group["invariant_findings"]),
        "unnecessary_delays": group["unnecessary_delays"],
    }


def test_crash_recovery_report(tmp_path):
    """Runs both measurements, asserts the bars, writes the artifact."""
    mck = _mck_section()
    chaos = _chaos_section(tmp_path / "chaos")

    report = {
        "bench": "crash-stop / crash-recovery (durable OptP replicas)",
        "cpu_count": os.cpu_count() or 1,
        "mck": mck,
        "chaos": chaos,
    }
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")

    # the victim must actually have died, recovered from disk, and
    # resynced -- and the served history must stay exactly causal.
    assert chaos["recovered"] == 1
    assert chaos["recovery_us"] > 0
    assert chaos["recovery_us"] <= RECOVERY_US_CEILING
    assert chaos["wal_records"] > 0
    assert chaos["ops"] > 0
    assert chaos["conformance_ok"]
    assert chaos["checker_problems"] == 0
    assert chaos["invariant_findings"] == 0
    assert chaos["unnecessary_delays"] == 0
