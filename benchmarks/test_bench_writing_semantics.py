"""Q3: the writing-semantics trade (Section 3.6).

Measures what the WS variants buy (fewer receiver delays, fewer
messages for the token variant) and what they give up (writes never
applied: skips at receivers, suppressions at senders -- both leave
class 𝒫), across variable-popularity skew; plus the metadata overhead
the receiver-side variant pays (per-variable vectors on every message).
"""

import pytest

from repro.paperfigs.comparison import compare_on_schedule
from repro.sim import SeededLatency, run_schedule
from repro.workloads import WorkloadConfig, random_schedule, write_burst_schedule

SEEDS = (0, 1, 2)


def _skewed(seed, zipf_s, n=5, ops=20):
    cfg = WorkloadConfig(
        n_processes=n, ops_per_process=ops, n_variables=6,
        write_fraction=0.8, zipf_s=zipf_s, seed=seed,
    )
    return random_schedule(cfg)


@pytest.mark.parametrize("zipf_s", [0.0, 2.0])
def test_bench_q3_skip_vs_skew(benchmark, zipf_s):
    def run():
        out = []
        for seed in SEEDS:
            out += compare_on_schedule(
                _skewed(seed, zipf_s), 5,
                protocols=("optp", "ws-receiver"),
                latency=SeededLatency(seed, dist="exponential", mean=2.0),
            )
        return out

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    ws = [m for m in metrics if m.protocol == "ws-receiver"]
    optp = [m for m in metrics if m.protocol == "optp"]
    # WS never delays more than OptP on the same schedule
    assert sum(m.delays for m in ws) <= sum(m.delays for m in optp)
    skips = sum(m.skipped for m in ws)
    print(f"\nzipf={zipf_s}: ws delays={sum(m.delays for m in ws)} "
          f"optp delays={sum(m.delays for m in optp)} skips={skips}")


def test_bench_q3_burst_workload(benchmark):
    """Same-variable bursts: the WS-receiver's best case -- most of a
    burst's writes are overwritten by its last write."""
    sched = write_burst_schedule(4, bursts=3, burst_size=6)

    def run():
        return compare_on_schedule(
            sched, 4, protocols=("optp", "ws-receiver"),
            latency=SeededLatency(3, dist="exponential", mean=3.0),
        )

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    by = {m.protocol: m for m in metrics}
    assert by["ws-receiver"].skipped > 0
    assert by["ws-receiver"].delays <= by["optp"].delays


def test_bench_q3_token_suppression(benchmark):
    """Sender-side WS: bursts collapse to one update per variable per
    token round, and the token protocol sends FEWER update payloads but
    pays token/batch traffic."""
    sched = write_burst_schedule(4, bursts=2, burst_size=8)

    def run():
        return compare_on_schedule(
            sched, 4, protocols=("optp", "jimenez-token"),
            latency=SeededLatency(5),
        )

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    by = {m.protocol: m for m in metrics}
    assert by["jimenez-token"].suppressed > 0
    # suppressed writes are simply never seen remotely
    assert by["jimenez-token"].remote_applies < by["optp"].remote_applies
    print(f"\ntoken: suppressed={by['jimenez-token'].suppressed} "
          f"msgs={by['jimenez-token'].messages} vs optp msgs={by['optp'].messages}")


def test_bench_q3_metadata_overhead(benchmark):
    """The WS-receiver's per-variable vectors cost wire bytes; measure
    the estimated overhead ratio vs plain OptP on the same workload."""
    cfg = WorkloadConfig(
        n_processes=5, ops_per_process=25, n_variables=8,
        write_fraction=0.7, seed=11,
    )
    sched = random_schedule(cfg)

    def run():
        r_optp = run_schedule("optp", 5, sched, latency=SeededLatency(11))
        r_ws = run_schedule("ws-receiver", 5, sched, latency=SeededLatency(11))
        return r_optp, r_ws

    r_optp, r_ws = benchmark.pedantic(run, rounds=1, iterations=1)
    assert r_ws.bytes_estimate > r_optp.bytes_estimate
    ratio = r_ws.bytes_estimate / r_optp.bytes_estimate
    print(f"\nws-receiver metadata overhead: {ratio:.2f}x OptP bytes")
