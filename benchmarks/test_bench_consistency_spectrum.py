"""Q5 (extension): the price of total order.

The paper's introduction motivates causal memory as "a low latency
abstraction with respect to stronger consistency criteria such as
sequential and atomic consistency, as it admits more executions and,
hence, more concurrency."  This benchmark quantifies that claim on our
substrate: the totally-ordered sequencer baseline vs OptP on identical
workloads.

Expected shape (asserted): total order delays strictly more than
causal order at every point, and the gap widens with concurrency
(process count), since total order must serialize even fully
independent writes.
"""

import pytest

from repro.analysis import check_run
from repro.sim import SeededLatency, run_schedule
from repro.workloads import WorkloadConfig, random_schedule

SEEDS = (0, 1, 2)


def _delays(proto, n, ops=12, write_fraction=0.8):
    total = 0
    for seed in SEEDS:
        cfg = WorkloadConfig(
            n_processes=n, ops_per_process=ops,
            write_fraction=write_fraction, seed=seed,
        )
        r = run_schedule(
            proto, n, random_schedule(cfg),
            latency=SeededLatency(seed, dist="exponential", mean=2.0),
        )
        report = check_run(r)
        assert report.ok, report.summary()
        total += report.total_delays
    return total


@pytest.mark.parametrize("n", [3, 6, 9])
def test_bench_q5_total_vs_causal_order(benchmark, n):
    def run():
        return {
            "optp": _delays("optp", n),
            "sequencer": _delays("sequencer", n),
        }

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    assert totals["sequencer"] > totals["optp"], totals
    print(f"\nn={n}: causal(optp)={totals['optp']} "
          f"total-order(sequencer)={totals['sequencer']} "
          f"ratio={totals['sequencer'] / max(1, totals['optp']):.2f}x")


def test_bench_q5_gap_grows_with_concurrency(benchmark):
    def run():
        return {
            n: _delays("sequencer", n) - _delays("optp", n)
            for n in (3, 9)
        }

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    assert gaps[9] > gaps[3], gaps
    print(f"\ntotal-order delay penalty: n=3 -> {gaps[3]}, n=9 -> {gaps[9]}")


def test_bench_q5_false_causality_share(benchmark):
    """The workload-level opportunity count behind ANBKH's waste
    (analysis cost measured; counts reported)."""
    from repro.analysis import analyze_false_causality

    cfg = WorkloadConfig(n_processes=6, ops_per_process=15,
                         write_fraction=0.8, seed=2)
    r = run_schedule("anbkh", 6, random_schedule(cfg),
                     latency=SeededLatency(2, dist="exponential", mean=2.0))

    rep = benchmark(analyze_false_causality, r)
    assert rep.hb_pairs > 0
    assert 0.0 <= rep.false_share <= 1.0
    print(f"\nfalse-causality opportunities: {rep.n_opportunities}/"
          f"{rep.hb_pairs} hb pairs ({rep.false_share:.1%})")
