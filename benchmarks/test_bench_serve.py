"""Tentpole benchmark: multi-process networked serving throughput.

Three measurements, mirroring the serving PR's claims:

- **n=3 saturation** -- one OptP replica group (3 server processes on
  unix sockets), an in-process load generator running pipelined
  micro-batched sessions at ``rate=0`` (closed-loop saturation).
  Reports ops/s plus read/write p50/p99 from the ``repro.obs``
  histograms.
- **2-shard n=6 saturation** -- two replica groups with the key space
  CRC-sharded across them, two spawned loadgen worker processes.
  Sharding is the horizontal-scale story: groups never talk to each
  other, so throughput should scale with shard count once there are
  cores to back it.
- **Recorded conformance run** -- a *rate-limited* run with event
  recording on, drained, merged, and replayed through the full oracle
  stack (legality checker + mck invariants + delay audit).  Always
  asserted: a fast server that serves a non-causal history is a bug,
  not a benchmark.  This run is short and slow on purpose -- the
  legality checker is O(W^2) in writes, so conformance and throughput
  are measured by *separate* runs (same server binary, same wire
  protocol; only the load shape differs).

``test_serve_throughput_report`` writes ``BENCH_serve.json`` at the
repo root (wired into ``repro-dsm bench compare`` via
``artifacts/bench_baseline.json``).  The headline >= 100k ops/s bar is
only *enforced* on hosts with >= 8 CPUs: 7 processes saturating a
single container core measure scheduler context-switching, not the
server (a 1-CPU container does ~50k ops/s).  The conformance gate and
the recorded numbers apply everywhere.
"""

import json
import os
from pathlib import Path

import pytest

from repro.serve import LoadgenConfig, serve_and_load

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_serve.json"

THROUGHPUT_FLOOR = 100_000.0
THROUGHPUT_MIN_CPUS = 8
#: every host, however small, must clear this (sanity, not a target).
THROUGHPUT_SANITY_FLOOR = 5_000.0

SATURATION_SECONDS = 1.5
CONFORMANCE_SECONDS = 1.0
CONFORMANCE_RATE = 400.0


def _saturation(shards, workers, rundir):
    cfg = LoadgenConfig(batch=128, pipeline=4, read_fraction=0.9,
                        keys=64, rate=0.0)
    return serve_and_load(
        "optp",
        group_size=3,
        shards=shards,
        rundir=rundir,
        duration=SATURATION_SECONDS,
        workers=workers,
        loadgen=cfg,
    )


def _conformance(rundir):
    cfg = LoadgenConfig(batch=8, pipeline=2, read_fraction=0.7,
                        keys=16, rate=CONFORMANCE_RATE)
    return serve_and_load(
        "optp",
        group_size=3,
        shards=1,
        rundir=rundir,
        duration=CONFORMANCE_SECONDS,
        record=True,
        verify=True,
        loadgen=cfg,
    )


def _load_section(report):
    load = report["load"]
    return {
        "nodes": report["nodes"],
        "shards": report["shards"],
        "workers": report["workers"],
        "ops": load["ops"],
        "batches": load["batches"],
        "ops_per_sec": load["ops_per_sec"],
        "read_p50_ms": load["read_p50_ms"],
        "read_p99_ms": load["read_p99_ms"],
        "write_p50_ms": load["write_p50_ms"],
        "write_p99_ms": load["write_p99_ms"],
    }


def test_serve_throughput_report(tmp_path):
    """Times everything, asserts the bars, writes ``BENCH_serve.json``."""
    cpu_count = os.cpu_count() or 1

    n3 = _saturation(shards=1, workers=1, rundir=tmp_path / "n3")
    shard2 = _saturation(shards=2, workers=2, rundir=tmp_path / "shard2")
    conf = _conformance(tmp_path / "conf")

    group = conf["conformance"]["groups"][0]
    throughput_enforced = cpu_count >= THROUGHPUT_MIN_CPUS

    report = {
        "bench": "multi-process networked serving (OptP KV store)",
        "cpu_count": cpu_count,
        "throughput_enforced": throughput_enforced,
        "throughput_floor_ops_per_sec": THROUGHPUT_FLOOR,
        "n3": _load_section(n3),
        "shard2": _load_section(shard2),
        "conformance": {
            "protocol": group["protocol"],
            "rate": CONFORMANCE_RATE,
            "events": group["events"],
            "writes": group["writes"],
            "reads": group["reads"],
            "checker_problems": len(group["checker_problems"]),
            "invariant_findings": len(group["invariant_findings"]),
            "unnecessary_delays": group["unnecessary_delays"],
        },
    }
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")

    # the always-on gate: the served history is causally consistent,
    # optimal, and fully propagated -- on every host.
    assert conf["conformance"]["ok"], group
    assert report["conformance"]["checker_problems"] == 0
    assert report["conformance"]["invariant_findings"] == 0
    assert report["conformance"]["unnecessary_delays"] == 0

    for name in ("n3", "shard2"):
        section = report[name]
        assert section["ops"] > 0 and section["batches"] > 0
        assert section["ops_per_sec"] >= THROUGHPUT_SANITY_FLOOR, (
            f"{name}: {section['ops_per_sec']:.0f} ops/s is below the "
            f"sanity floor {THROUGHPUT_SANITY_FLOOR:.0f} -- the serving "
            f"stack itself regressed")
        assert section["read_p99_ms"] is not None
        assert section["write_p99_ms"] is not None

    if throughput_enforced:
        best = max(report["n3"]["ops_per_sec"],
                   report["shard2"]["ops_per_sec"])
        assert best >= THROUGHPUT_FLOOR, (
            f"peak {best:.0f} ops/s below the {THROUGHPUT_FLOOR:.0f} "
            f"floor on {cpu_count} CPUs: "
            f"n3={report['n3']}, shard2={report['shard2']}")
