"""Tentpole benchmark: dependency-indexed scheduler vs legacy re-scan.

The adversarial workload for buffered delivery is a *reversed chain*:
one sender issues W causally ordered writes and the receiver gets them
newest-first, so every message buffers until the oldest arrives and
then the whole chain cascades.  The legacy drain re-classifies the
entire pending buffer on every receipt and after every apply --
O(W^2 * n) vector comparisons; the indexed scheduler parks each write
under its one missing ``(process, seq)`` key and wakes exactly one
message per apply -- O(W * n).

Two harnesses:

- a single-node harness (pure scheduler cost, no event loop) swept
  over n in {16, 64, 128} with pytest-benchmark timings per mode;
- a full-cluster run at n=16 under a reversing latency model, showing
  the end-to-end effect.

``test_scheduler_speedup_report`` re-times both modes with
``time.perf_counter`` (pytest-benchmark may run with
``--benchmark-disable`` in CI smoke), asserts the acceptance bar --
indexed >= 5x faster at n=64 -- and writes ``BENCH_scheduler.json``
at the repo root.
"""

import json
import time
from pathlib import Path

import pytest

from repro.core.base import UpdateMessage
from repro.core.optp import OptPProtocol
from repro.sim import SimCluster
from repro.sim.latency import LatencyModel
from repro.sim.node import Node
from repro.sim.trace import Trace
from repro.workloads.generators import write_burst_schedule

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_scheduler.json"

CHAIN_DEPTH = 1024
SWEEP_N = [16, 64, 128]
SPEEDUP_FLOOR_AT_64 = 5.0


class ReversingLatency(LatencyModel):
    """Adversarial reordering: write seq k arrives after delay
    ``horizon - k``, so every sender's chain lands fully reversed at
    every receiver."""

    def __init__(self, horizon: int):
        self.horizon = horizon

    def latency(self, sender: int, dest: int, message) -> float:
        if isinstance(message, UpdateMessage):
            return 1.0 + (self.horizon - message.wid.seq)
        return 0.5


def reversed_chain(n, depth=CHAIN_DEPTH):
    sender = OptPProtocol(0, n)
    msgs = [sender.write("x", k).outgoing[0].message for k in range(depth)]
    msgs.reverse()
    return msgs


def drain_reversed(n, mode, msgs):
    trace = Trace(n)
    node = Node(OptPProtocol(1, n), trace, clock=lambda: 0.0,
                dispatch=lambda *a: None, scheduler=mode)
    for m in msgs:
        node.receive(m)
    assert node.buffered_count == 0
    return len(trace.apply_order(1))


@pytest.mark.parametrize("mode", ["legacy", "indexed"])
@pytest.mark.parametrize("n", SWEEP_N)
def test_bench_scheduler_reversed_chain(benchmark, n, mode):
    msgs = reversed_chain(n)
    applies = benchmark.pedantic(drain_reversed, args=(n, mode, msgs),
                                 rounds=3, iterations=1)
    assert applies == CHAIN_DEPTH


@pytest.mark.parametrize("mode", ["legacy", "indexed"])
def test_bench_scheduler_cluster_reversed(benchmark, mode):
    """End-to-end: 16 processes, one bursty writer, reversed delivery."""
    n, burst = 16, 96
    sched = write_burst_schedule(1, 1, burst)

    def run():
        c = SimCluster("optp", n, latency=ReversingLatency(burst + 1),
                       scheduler=mode)
        r = c.run_schedule(sched)
        assert r.remote_applies == burst * (n - 1)
        return r

    benchmark.pedantic(run, rounds=3, iterations=1)


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_scheduler_speedup_report():
    """Times both modes, asserts the >=5x acceptance bar at n=64, and
    writes the committed ``BENCH_scheduler.json`` artifact."""
    results = {}
    for n in SWEEP_N:
        msgs = reversed_chain(n)
        legacy = _best_of(lambda: drain_reversed(n, "legacy", msgs))
        indexed = _best_of(lambda: drain_reversed(n, "indexed", msgs))
        results[str(n)] = {
            "legacy_s": round(legacy, 6),
            "indexed_s": round(indexed, 6),
            "speedup": round(legacy / indexed, 2),
        }

    n, burst = 16, 96
    sched = write_burst_schedule(1, 1, burst)

    def cluster(mode):
        SimCluster("optp", n, latency=ReversingLatency(burst + 1),
                   scheduler=mode).run_schedule(sched)

    cl_legacy = _best_of(lambda: cluster("legacy"))
    cl_indexed = _best_of(lambda: cluster("indexed"))

    report = {
        "bench": "dependency-indexed delivery scheduler",
        "workload": {
            "shape": "single-sender reversed chain",
            "chain_depth": CHAIN_DEPTH,
            "n_sweep": SWEEP_N,
        },
        "single_node": results,
        "cluster_n16_burst96": {
            "legacy_s": round(cl_legacy, 6),
            "indexed_s": round(cl_indexed, 6),
            "speedup": round(cl_legacy / cl_indexed, 2),
        },
    }
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")

    speedup_64 = results["64"]["speedup"]
    assert speedup_64 >= SPEEDUP_FLOOR_AT_64, (
        f"indexed scheduler only {speedup_64}x faster than legacy at "
        f"n=64 (floor {SPEEDUP_FLOOR_AT_64}x): {results}"
    )
