"""Q4: protocol-mechanics micro-benchmarks.

Measures the primitive costs underlying every run -- vector-clock
comparisons (list vs numpy crossover, the DESIGN.md claim), OptP's
activation predicate, write/read procedure throughput, engine event
throughput, and batch trace analysis -- so regressions in the hot path
are visible independently of workload effects.
"""

import random

import pytest

from repro.core.optp import OptPProtocol
from repro.core.vectorclock import (
    batch_precedes_matrix,
    vc_join,
    vc_le,
    vc_lt,
)
from repro.protocols.anbkh import ANBKHProtocol
from repro.protocols.base import Disposition
from repro.sim import Engine


def _vectors(n, count, seed=0):
    rng = random.Random(seed)
    return [[rng.randrange(100) for _ in range(n)] for _ in range(count)]


@pytest.mark.parametrize("n", [4, 16, 64])
def test_bench_q4_vc_lt_list(benchmark, n):
    pairs = list(zip(_vectors(n, 200, 1), _vectors(n, 200, 2)))

    def run():
        return sum(vc_lt(a, b) for a, b in pairs)

    benchmark(run)


@pytest.mark.parametrize("n", [4, 16, 64])
def test_bench_q4_vc_batch_numpy(benchmark, n):
    vecs = _vectors(n, 200, 3)

    def run():
        return batch_precedes_matrix(vecs).sum()

    benchmark(run)


def test_bench_q4_vc_join(benchmark):
    a, b = _vectors(16, 2, 4)
    benchmark(lambda: vc_join(a, b))


def test_bench_q4_vc_join_inplace(benchmark):
    """The read/apply-path join without the per-call list rebuild
    (adopted in the ANBKH and ws-receiver apply paths by the flat-state
    PR): mutates the accumulator instead of allocating a result."""
    from repro.core.vectorclock import vc_join_inplace

    a, b = _vectors(16, 2, 4)
    acc = list(a)
    benchmark(lambda: vc_join_inplace(acc, b))


def test_bench_q4_ws_receiver_read_join(benchmark):
    """ws-receiver's read-time merge (Definition 10 jump): dominated by
    the per-variable past joins, now in-place via vc_join_inplace."""
    from repro.protocols.ws_receiver import WSReceiverProtocol

    sender = WSReceiverProtocol(0, 16)
    receiver = WSReceiverProtocol(1, 16)
    for k in range(8):
        msg = sender.write(f"x{k % 4}", k).outgoing[0].message
        receiver.apply_update(msg)

    benchmark(lambda: receiver.read("x1"))


def test_bench_q4_optp_write(benchmark):
    p = OptPProtocol(0, 16)

    def write():
        p.write("x", 1)

    benchmark(write)


def test_bench_q4_optp_read(benchmark):
    p = OptPProtocol(0, 16)
    p.write("x", 1)
    benchmark(lambda: p.read("x"))


def test_bench_q4_optp_classify(benchmark):
    """The activation predicate (Figure 5 line 2): the per-receipt cost."""
    sender = OptPProtocol(0, 16)
    receiver = OptPProtocol(1, 16)
    msg = sender.write("x", 1).outgoing[0].message

    result = benchmark(receiver.classify, msg)
    assert result is Disposition.APPLY


def test_bench_q4_anbkh_classify(benchmark):
    sender = ANBKHProtocol(0, 16)
    receiver = ANBKHProtocol(1, 16)
    msg = sender.write("x", 1).outgoing[0].message

    result = benchmark(receiver.classify, msg)
    assert result is Disposition.APPLY


def test_bench_q4_scheduled_alloc(benchmark):
    """Allocation cost of the engine's heap entries.

    ``_Scheduled`` is ``slots=True``: on the reference box that took
    one instance from ~176 to ~136 bytes (tracemalloc, 10k instances)
    and allocation from ~376 to ~328 ns -- a ~23% footprint cut on the
    object every scheduled event allocates.  The hasattr assertion
    pins the layout so the dict never silently comes back.
    """
    from repro.sim.engine import _Scheduled

    fn = lambda: None  # noqa: E731

    def alloc():
        return [_Scheduled(float(k), k, fn) for k in range(1_000)]

    items = benchmark(alloc)
    assert not hasattr(items[0], "__dict__")


def test_bench_q4_engine_throughput(benchmark):
    """Raw event-loop overhead: schedule+run 10k no-op events."""

    def run():
        e = Engine()
        for k in range(10_000):
            e.schedule_at(float(k), lambda: None)
        e.run()
        return e.events_processed

    assert benchmark(run) == 10_000


@pytest.mark.parametrize("depth", [10, 100, 400])
def test_bench_q4_drain_scaling(benchmark, depth):
    """Cost of the re-test-all pending-buffer drain vs buffer depth
    (DESIGN.md 'Buffering strategy' ablation): a worst case where one
    arrival unblocks a same-sender chain of `depth` buffered writes.
    Pinned to the legacy scan -- this measures the ablated re-scan
    itself; the indexed path is covered in test_bench_scheduler.py."""
    from repro.sim.node import Node
    from repro.sim.trace import Trace

    def run():
        sender = OptPProtocol(0, 2)
        msgs = [sender.write("x", k).outgoing[0].message
                for k in range(depth + 1)]
        trace = Trace(2)
        node = Node(OptPProtocol(1, 2), trace, clock=lambda: 0.0,
                    dispatch=lambda *a: None, scheduler="legacy")
        for m in msgs[1:]:
            node.receive(m)          # all buffered (first write missing)
        assert node.buffered_count == depth
        node.receive(msgs[0])        # unblocks the whole chain
        assert node.buffered_count == 0
        return len(trace)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_bench_q4_safety_checker(benchmark):
    """The vectorized Theorem-3 check over a mid-size run (the
    heaviest analyzer after the ->co closure itself)."""
    from repro.analysis.checker import check_safety
    from repro.sim import SeededLatency, run_schedule
    from repro.workloads import WorkloadConfig, random_schedule

    cfg = WorkloadConfig(n_processes=8, ops_per_process=40,
                         write_fraction=0.7, seed=1)
    r = run_schedule("optp", 8, random_schedule(cfg),
                     latency=SeededLatency(1))
    r.history.causal_order  # warm the closure cache; measure the check

    violations = benchmark(check_safety, r)
    assert violations == []


def test_bench_q4_precedes_matrix(benchmark):
    """Batch ->co matrix extraction (feeds safety + falsecausality)."""
    from repro.sim import SeededLatency, run_schedule
    from repro.workloads import WorkloadConfig, random_schedule

    cfg = WorkloadConfig(n_processes=6, ops_per_process=50,
                         write_fraction=0.8, seed=2)
    r = run_schedule("optp", 6, random_schedule(cfg),
                     latency=SeededLatency(2))
    writes = list(r.history.writes())
    co = r.history.causal_order

    m = benchmark(co.precedes_matrix, writes)
    assert m.shape == (len(writes), len(writes))


def test_bench_q4_end_to_end_run(benchmark):
    """A full mid-size verified simulation, the harness's unit of work."""
    from repro.analysis import check_run
    from repro.sim import SeededLatency, run_schedule
    from repro.workloads import WorkloadConfig, random_schedule

    cfg = WorkloadConfig(n_processes=8, ops_per_process=20,
                         write_fraction=0.6, seed=42)
    sched = random_schedule(cfg)

    def run():
        r = run_schedule("optp", 8, sched, latency=SeededLatency(42))
        return check_run(r)

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.ok
