"""T1: regenerate Table 1 (X_co-safe of H1's apply events)."""

from repro.paperfigs import table1
from repro.workloads.patterns import WID_A, WID_B, WID_C, WID_D


def test_bench_table1(benchmark):
    text = benchmark(table1.generate)
    # the paper's rows, verbatim facts
    d = table1.as_dict()
    for k in range(3):
        assert d[(k, WID_A)] == frozenset()
        assert d[(k, WID_C)] == {WID_A}
        assert d[(k, WID_B)] == {WID_A}
        assert d[(k, WID_D)] == {WID_A, WID_B}
    assert "Table 1" in text
