"""Tentpole benchmark: parallel sweep runner + content-addressed cache.

The workload is a fig6-style comparison grid -- ``sweep_processes``
over n in {3, 5, 8}, three seeds, all four protocols (36 verified
simulations) -- executed three ways:

- **serial cold**: the reference path (``jobs=1``, no cache);
- **parallel cold**: ``jobs=4`` against a fresh cache;
- **warm**: the same grid again, now answered fully from the cache.

``test_sweep_speedup_report`` re-times all three with
``time.perf_counter`` (pytest-benchmark may run with
``--benchmark-disable`` in CI smoke), checks the rows of every
configuration are identical, asserts the acceptance bars -- warm
>= 10x over serial cold always; parallel cold >= 2x on machines with
>= 4 cores (process pools cannot beat serial on the 1-core container
this repo is sometimes developed in, so that bar is gated on
``os.cpu_count()``; CI runs it) -- and writes ``BENCH_sweep.json`` at
the repo root with the honest numbers either way.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.paperfigs.comparison import sweep_processes
from repro.sweep import RunCache, SweepRunner

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_sweep.json"

GRID = dict(n_values=(3, 5, 8), ops_per_process=15, seeds=(0, 1, 2),
            protocols=("optp", "anbkh", "ws-receiver", "jimenez-token"))
GRID_RUNS = 3 * 3 * 4
PARALLEL_JOBS = 4
WARM_SPEEDUP_FLOOR = 10.0
PARALLEL_SPEEDUP_FLOOR = 2.0
PARALLEL_MIN_CORES = 4


def run_grid(runner=None):
    return sweep_processes(**GRID, runner=runner)


def test_bench_sweep_serial(benchmark):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    assert len(rows) == 3 * 4


def test_bench_sweep_warm_cache(benchmark, tmp_path):
    runner = SweepRunner(cache=RunCache(tmp_path))
    cold = run_grid(runner)

    warm = benchmark.pedantic(run_grid, args=(runner,),
                              rounds=1, iterations=1)
    assert warm == cold
    assert runner.stats.cache_hits == GRID_RUNS


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def test_sweep_speedup_report(tmp_path):
    """Times the three execution modes, checks result identity,
    asserts the acceptance bars, writes ``BENCH_sweep.json``."""
    serial_rows, serial_s = _timed(run_grid)

    cold_cache = RunCache(tmp_path / "cold")
    parallel_runner = SweepRunner(jobs=PARALLEL_JOBS, cache=cold_cache)
    parallel_rows, parallel_s = _timed(lambda: run_grid(parallel_runner))
    assert parallel_rows == serial_rows
    assert parallel_runner.stats.cache_misses == GRID_RUNS

    warm_rows, warm_s = _timed(lambda: run_grid(parallel_runner))
    assert warm_rows == serial_rows
    assert parallel_runner.stats.cache_hits == GRID_RUNS

    cores = os.cpu_count() or 1
    parallel_gated = cores >= PARALLEL_MIN_CORES
    report = {
        "bench": "parallel sweep runner + content-addressed cache",
        "workload": {
            "shape": "sweep_processes comparison grid",
            "n_values": list(GRID["n_values"]),
            "seeds": list(GRID["seeds"]),
            "protocols": list(GRID["protocols"]),
            "runs": GRID_RUNS,
        },
        "host_cores": cores,
        "jobs": PARALLEL_JOBS,
        "serial_cold_s": round(serial_s, 6),
        "parallel_cold_s": round(parallel_s, 6),
        "warm_s": round(warm_s, 6),
        "parallel_speedup": round(serial_s / parallel_s, 2),
        "warm_speedup": round(serial_s / warm_s, 2),
        "parallel_bar_checked": parallel_gated,
    }
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")

    warm_speedup = report["warm_speedup"]
    assert warm_speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm cache only {warm_speedup}x faster than serial cold "
        f"(floor {WARM_SPEEDUP_FLOOR}x): {report}"
    )
    if parallel_gated:
        parallel_speedup = report["parallel_speedup"]
        assert parallel_speedup >= PARALLEL_SPEEDUP_FLOOR, (
            f"--jobs {PARALLEL_JOBS} only {parallel_speedup}x faster "
            f"than serial (floor {PARALLEL_SPEEDUP_FLOOR}x on "
            f"{cores} cores): {report}"
        )
