"""Q8 (extension): partial replication -- the [14] setting, measured.

Sweeps the replication factor k (holders per variable): traffic falls
roughly with k (that is reference [14]'s motivation for partial
replication), while delays per write fall too (fewer held predecessors
to wait for).  Every run is verified, including the transitive
dependencies through unheld variables.
"""

import pytest

from repro.analysis import check_run
from repro.protocols.partial import ReplicationMap, partial_factory
from repro.sim import SeededLatency, run_schedule
from repro.workloads import WorkloadConfig
from repro.workloads.generators import random_partial_schedule

N, M = 6, 8
VARIABLES = [f"x{i}" for i in range(M)]
SEEDS = (0, 1, 2)


def run_factor(k):
    rmap = ReplicationMap.round_robin(VARIABLES, N, k)
    msgs = delays = writes = 0
    for seed in SEEDS:
        cfg = WorkloadConfig(n_processes=N, ops_per_process=12,
                             n_variables=M, write_fraction=0.7, seed=seed)
        sched = random_partial_schedule(cfg, rmap)
        r = run_schedule(partial_factory(rmap), N, sched,
                         latency=SeededLatency(seed, dist="exponential",
                                               mean=2.0))
        report = check_run(r)
        assert report.ok, (k, seed, report.summary())
        assert not report.unnecessary_delays
        msgs += r.messages_sent
        delays += report.total_delays
        writes += r.writes_issued
    return dict(msgs=msgs, delays=delays, writes=writes)


@pytest.mark.parametrize("k", [2, 4, 6])
def test_bench_q8_replication_factor(benchmark, k):
    stats = benchmark.pedantic(run_factor, args=(k,), rounds=1, iterations=1)
    assert stats["writes"] > 0
    print(f"\nk={k}: msgs={stats['msgs']} delays={stats['delays']} "
          f"writes={stats['writes']}")


def test_bench_q8_traffic_shape(benchmark):
    """Messages grow ~linearly in k; full replication (k=n) is the
    ceiling."""

    def run():
        return {k: run_factor(k)["msgs"] for k in (2, 4, 6)}

    msgs = benchmark.pedantic(run, rounds=1, iterations=1)
    assert msgs[2] < msgs[4] < msgs[6]
    print(f"\ntraffic by replication factor: {msgs}")
