"""F1/F2/F3/F6/F7: regenerate every figure's run and assert its facts."""

import pytest

from repro.paperfigs import fig1, fig2, fig3, fig6, fig7


def test_bench_fig1(benchmark):
    text = benchmark(fig1.generate)
    assert "write delays at p3: 0" in text
    assert "write delays at p3: 1" in text


def test_bench_fig2(benchmark):
    text = benchmark(fig2.generate)
    assert "NON-NECESSARY delay" in text


def test_bench_fig3(benchmark):
    text = benchmark(fig3.generate)
    # the headline: same schedule, ANBKH 1 unnecessary delay, OptP 0
    assert "delays: 1 (unnecessary: 1)" in text
    assert "delays: 0 (unnecessary: 0)" in text


def test_bench_fig6(benchmark):
    text = benchmark(fig6.generate)
    assert "Write_co=[1,1,0]" in text  # b carries no trace of c
    assert "all necessary: True" in text


def test_bench_fig7(benchmark):
    text = benchmark(fig7.generate)
    assert "w1(x1)a -> w2(x2)b" in text
    assert "w2(x2)b -> w3(x2)d" in text
