"""T2: regenerate Table 2 (X_ANBKH of the Figure 3 run).

Includes the paper's non-optimality witnesses: exactly six rows exceed
the safe minimum, each by {w1(x1)c}.
"""

from repro.paperfigs import table2
from repro.workloads.patterns import WID_A, WID_B, WID_C, WID_D


def test_bench_table2(benchmark):
    text = benchmark(table2.generate)
    d = table2.as_dict()
    for k in range(3):
        assert d[(k, WID_B)] == {WID_A, WID_C}
        assert d[(k, WID_D)] == {WID_A, WID_C, WID_B}
    assert "rows where X_ANBKH ⊃ X_co-safe: 6" in text
