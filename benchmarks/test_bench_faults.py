"""Q6 (extension): robustness under crash-stop faults.

The paper assumes reliable, failure-free processes; this benchmark
probes what each protocol's *structure* implies when that assumption
breaks: broadcast protocols keep the survivors fully consistent, while
the token protocol's propagation dies with the ring.
"""

import pytest

from repro.analysis.checker import check_safety
from repro.model.legality import is_causally_consistent
from repro.sim import ConstantLatency, SimCluster
from repro.workloads import Schedule, ScheduledOp, WriteOp


def workload(n, writes_per_proc=6, gap=2.0):
    items = []
    for p in range(n):
        for k in range(writes_per_proc):
            items.append(ScheduledOp(k * gap + p * 0.1, p, WriteOp(f"x{p}", k)))
    return Schedule.of(items)


def run_with_crash(proto, n=4, crash_proc=3, crash_time=5.0, deadline=120.0):
    c = SimCluster(proto, n, latency=ConstantLatency(1.0),
                   crashes={crash_proc: crash_time}, deadline=deadline)
    return c.run_schedule(workload(n))


def survivor_apply_fraction(result, crashed: int) -> float:
    """Fraction of (survivor, issued-write) pairs that were applied."""
    survivors = [k for k in range(result.n_processes) if k != crashed]
    pairs = 0
    applied = 0
    for wid in result.trace.writes_issued():
        for k in survivors:
            if k == wid.process:
                continue
            pairs += 1
            if result.trace.apply_event(k, wid) is not None:
                applied += 1
    return applied / pairs if pairs else 1.0


@pytest.mark.parametrize("proto", ["optp", "anbkh"])
def test_bench_q6_broadcast_protocols_survive(benchmark, proto):
    result = benchmark.pedantic(run_with_crash, args=(proto,), rounds=1,
                                iterations=1)
    frac = survivor_apply_fraction(result, crashed=3)
    assert frac == 1.0, f"{proto}: survivors missed applies ({frac:.2%})"
    assert not check_safety(result)
    assert is_causally_consistent(result.history)
    print(f"\n{proto}: survivors applied 100% of issued writes after crash")


def test_bench_q6_token_protocol_degrades(benchmark):
    result = benchmark.pedantic(run_with_crash, args=("jimenez-token",),
                                rounds=1, iterations=1)
    frac = survivor_apply_fraction(result, crashed=3)
    assert frac < 1.0, "token loss should strand post-crash writes"
    # what DID apply is still safe and legal
    assert not check_safety(result)
    assert is_causally_consistent(result.history)
    print(f"\njimenez-token: survivors applied only {frac:.1%} of issued "
          "writes (ring broken)")


def test_bench_q6_sequencer_crash_is_fatal(benchmark):
    """Crashing the sequencer itself halts all post-crash propagation --
    the centralization cost of total order."""
    result = benchmark.pedantic(
        run_with_crash, args=("sequencer",),
        kwargs=dict(crash_proc=0, crash_time=5.0), rounds=1, iterations=1,
    )
    frac = survivor_apply_fraction(result, crashed=0)
    assert frac < 1.0
    assert not check_safety(result)
    print(f"\nsequencer crash: survivors applied {frac:.1%} of issued writes")
