"""Observability overhead budget: disabled-obs must cost <= 5%.

Every instrumentation hook on the simulator's hot paths is gated on a
single ``if obs.enabled:`` branch (instrument handles are resolved once
at construction).  This benchmark checks the budget on the most
hook-dense workload we have -- the reversed-chain scheduler drain of
``test_bench_scheduler.py``, where every message goes receipt -> park
-> wakeup -> apply, hitting Node and IndexedScheduler hooks on each
step.

Three variants over the same workload, for each backend (the scalar
indexed scheduler and the flat requirement-row backend):

- ``bare``      -- benchmark-local Node/scheduler subclasses whose hot
                   methods are the pre-instrumentation bodies (no obs
                   attribute loads, no branches): the honest
                   "instrumentation absent" control;
- ``disabled``  -- the shipped code with the default ``NULL_OBS``
                   handle (what every non-observed run pays);
- ``enabled``   -- ``Obs.recording()``: metrics + spans materialized.

The acceptance bar (asserted per backend, and written to
``BENCH_obs.json``): ``disabled / bare <= 1.05``.  ``enabled`` is
reported for context; it has no bar -- recording is allowed to cost
real work.
"""

import gc
import heapq
import json
import time
from pathlib import Path

import pytest

from repro.core.base import Disposition
from repro.core.optp import OptPProtocol
from repro.obs import Obs
from repro.sim.node import Node
from repro.sim.scheduler import FlatScheduler, IndexedScheduler
from repro.sim.trace import EventKind, Trace

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_obs.json"

CHAIN_DEPTH = 1024
N_PROCESSES = 64
OVERHEAD_CEILING = 1.05
#: absolute-noise guard: on a sub-millisecond delta the ratio test
#: measures the OS scheduler, not the code under test.
NOISE_FLOOR_S = 0.002


class BareIndexedScheduler(IndexedScheduler):
    """IndexedScheduler with the obs gates stripped from the hot path
    (park / notify_applied / pump bodies as they were pre-hooks)."""

    def park(self, msg):
        seq = self._arrivals
        self._arrivals += 1
        self._buffered[seq] = msg
        self._park_under_next_dep(seq, msg)

    def notify_applied(self, msg):
        key = self.protocol.apply_event(msg)
        entries = self._parked.pop(key, None)
        if entries:
            for entry in entries:
                heapq.heappush(self._woken, entry)
            self.wakeups += len(entries)

    def pump(self, apply_cb, discard_cb):
        woken = self._woken
        while woken:
            seq, msg = heapq.heappop(woken)
            if seq not in self._buffered:  # pragma: no cover - defensive
                continue
            disposition = self.protocol.classify(msg)
            if disposition is Disposition.BUFFER:
                self._park_under_next_dep(seq, msg)
                continue
            del self._buffered[seq]
            if disposition is Disposition.APPLY:
                apply_cb(msg)
            else:
                discard_cb(msg)


class BareNode(Node):
    """Node with the obs gates stripped from the receive/apply path."""

    def _receive_update(self, msg):
        now = self.clock()
        self.trace.record(
            now, self.process_id, EventKind.RECEIPT,
            wid=msg.wid, variable=msg.variable, value=msg.value,
        )
        disposition = self.protocol.classify(msg)
        if disposition is Disposition.APPLY:
            self._apply(msg)
            self._drain()
        elif disposition is Disposition.BUFFER:
            self.trace.record(
                now, self.process_id, EventKind.BUFFER,
                wid=msg.wid, variable=msg.variable,
            )
            self.scheduler.park(msg)
        else:
            self._discard(msg)

    def _apply(self, msg):
        self.protocol.apply_update(msg)
        self.trace.record(
            self.clock(), self.process_id, EventKind.APPLY,
            wid=msg.wid, variable=msg.variable, value=msg.value,
            state=self._state(),
        )
        self.scheduler.notify_applied(msg)
        if self._on_remote_apply is not None:
            self._on_remote_apply()


class BareFlatScheduler(FlatScheduler):
    """FlatScheduler with the obs gates stripped from the hot path
    (offer / notify_applied / pump bodies as they were pre-hooks; the
    sparse requirement loop only -- the chain workload never crosses
    the dense threshold)."""

    def offer(self, msg):
        deps = msg.flat_deps
        if deps is None:
            deps = self.protocol.flat_deps(msg)
        fast = self._fp.fast
        pivot = deps.pivot
        missing = []
        if pivot is not None:
            d = fast[pivot] - deps.pivot_req
            if d > 0:
                self._dead_park(msg)
                return Disposition.BUFFER
            if d < 0:
                missing.append((pivot, deps.pivot_req))
        items = deps.items
        if len(items) <= 16:  # DENSE_THRESHOLD
            for c, req in items:
                if fast[c] < req:
                    missing.append((c, req))
        else:
            row = deps.row
            import numpy as np
            for c in np.flatnonzero(row > self._fp.vec):
                c = int(c)
                if c != pivot:
                    missing.append((c, int(row[c])))
        if not missing:
            return Disposition.APPLY
        seq = self._arrivals
        self._arrivals += 1
        self._buffered[seq] = msg
        parked = self._parked
        if self._default_dep_key:
            for key in missing:
                parked.setdefault(key, []).append(seq)
        else:
            dep_key = self.protocol.flat_dep_key
            for key in (dep_key(c, req) for c, req in missing):
                parked.setdefault(key, []).append(seq)
        self._slots[seq] = [msg, deps, len(missing)]
        return Disposition.BUFFER

    def _dead_park(self, msg):
        seq = self._arrivals
        self._arrivals += 1
        self._buffered[seq] = msg
        self.dead_parked += 1

    def notify_applied(self, msg):
        if self._default_apply_key:
            key = (msg.sender, msg.wid.seq)
        else:
            key = self.protocol.apply_event(msg)
        seqs = self._parked.pop(key, None)
        if seqs:
            slots = self._slots
            ready = self._ready
            for seq in seqs:
                slot = slots[seq]
                slot[2] -= 1
                if slot[2] == 0:
                    heapq.heappush(ready, seq)
            self.wakeups += len(seqs)

    def pump(self, apply_cb, discard_cb):
        ready = self._ready
        fast = self._fp.fast
        slots = self._slots
        while ready:
            seq = heapq.heappop(ready)
            slot = slots.pop(seq, None)
            if slot is None:  # pragma: no cover - defensive
                continue
            msg, deps = slot[0], slot[1]
            pivot = deps.pivot
            if pivot is not None and fast[pivot] != deps.pivot_req:
                self.dead_parked += 1
                continue
            del self._buffered[seq]
            apply_cb(msg)


class BareFlatNode(Node):
    """Node with the obs gates stripped from the flat receive/apply path."""

    def _receive_update_flat(self, msg):
        now = self.clock()
        trace = self.trace
        trace.record_compact(now, self.process_id, EventKind.RECEIPT,
                             msg.wid, msg.variable, msg.value)
        if self.scheduler.offer(msg) is Disposition.APPLY:
            self._apply_flat(msg)
            self.scheduler.pump(self._apply_flat, self._discard)
        else:
            trace.record_compact(now, self.process_id, EventKind.BUFFER,
                                 msg.wid, msg.variable)

    def _apply_flat(self, msg):
        self.protocol.apply_update(msg)
        self.trace.record_compact(self.clock(), self.process_id,
                                  EventKind.APPLY,
                                  msg.wid, msg.variable, msg.value)
        self.scheduler.notify_applied(msg)
        if self._on_remote_apply is not None:
            self._on_remote_apply()


def reversed_chain(n=N_PROCESSES, depth=CHAIN_DEPTH):
    sender = OptPProtocol(0, n)
    msgs = [sender.write("x", k).outgoing[0].message for k in range(depth)]
    msgs.reverse()
    return msgs


def make_node(variant, n=N_PROCESSES):
    trace = Trace(n)
    backend, _, mode = variant.partition("-")
    if backend == "flat":
        if mode == "bare":
            node = BareFlatNode(OptPProtocol(1, n), trace, clock=lambda: 0.0,
                                dispatch=lambda *a: None,
                                state_backend="flat")
            node.scheduler = BareFlatScheduler(node.protocol)
            return node
        obs = Obs.recording() if mode == "enabled" else None
        kwargs = {"obs": obs} if obs is not None else {}
        return Node(OptPProtocol(1, n), trace, clock=lambda: 0.0,
                    dispatch=lambda *a: None, state_backend="flat", **kwargs)
    if variant == "bare":
        node = BareNode(OptPProtocol(1, n), trace, clock=lambda: 0.0,
                        dispatch=lambda *a: None, scheduler="indexed")
        node.scheduler = BareIndexedScheduler(node.protocol)
        return node
    obs = Obs.recording() if variant == "enabled" else None
    kwargs = {"obs": obs} if obs is not None else {}
    return Node(OptPProtocol(1, n), trace, clock=lambda: 0.0,
                dispatch=lambda *a: None, scheduler="indexed", **kwargs)


def drain(variant, msgs, n=N_PROCESSES):
    node = make_node(variant, n)
    for m in msgs:
        node.receive(m)
    assert node.buffered_count == 0
    return node


VARIANTS = ["bare", "disabled", "enabled"]
FLAT_VARIANTS = ["flat-bare", "flat-disabled", "flat-enabled"]


@pytest.mark.parametrize("variant", VARIANTS + FLAT_VARIANTS)
def test_bench_obs_drain(benchmark, variant):
    msgs = reversed_chain()
    benchmark.pedantic(drain, args=(variant, msgs), rounds=3, iterations=1)


def test_bare_variant_matches_shipped_behaviour():
    """The control must do the same protocol work as the real path."""
    msgs = reversed_chain(n=8, depth=32)
    bare = drain("bare", msgs, n=8)
    real = drain("disabled", msgs, n=8)
    assert len(bare.trace.apply_order(1)) == len(real.trace.apply_order(1)) == 32
    assert bare.scheduler.wakeups == real.scheduler.wakeups


def test_bare_flat_variant_matches_shipped_behaviour():
    """Same proof for the flat backend's control."""
    msgs = reversed_chain(n=8, depth=32)
    bare = drain("flat-bare", msgs, n=8)
    real = drain("flat-disabled", msgs, n=8)
    assert len(bare.trace.apply_order(1)) == len(real.trace.apply_order(1)) == 32
    assert bare.scheduler.wakeups == real.scheduler.wakeups
    assert bare.scheduler.mode == real.scheduler.mode == "flat"


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _best_of_interleaved(fns, repeats=9):
    """Best-of timings with the variants *interleaved* round-robin, so
    clock-frequency / thermal drift lands on every variant equally --
    back-to-back blocks per variant systematically skew the ratios at
    this (~20 ms) measurement scale.  GC is parked while timing (a
    collection pause is ~10% of one measurement and lands on whichever
    variant is unlucky)."""
    best = {name: float("inf") for name in fns}
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            gc.collect()
            for name, fn in fns.items():
                t0 = time.perf_counter()
                fn()
                best[name] = min(best[name], time.perf_counter() - t0)
    finally:
        if was_enabled:
            gc.enable()
    return best


def test_obs_overhead_report():
    """Times all variants on both backends, asserts the disabled-mode
    ceiling per backend, and writes the committed ``BENCH_obs.json``
    artifact."""
    msgs = reversed_chain()
    timings = _best_of_interleaved(
        {v: (lambda v=v: drain(v, msgs)) for v in VARIANTS + FLAT_VARIANTS})
    ratio = timings["disabled"] / timings["bare"]
    flat_ratio = timings["flat-disabled"] / timings["flat-bare"]

    report = {
        "bench": "observability hot-path overhead",
        "workload": {
            "shape": "single-sender reversed chain, indexed + flat backends",
            "chain_depth": CHAIN_DEPTH,
            "n_processes": N_PROCESSES,
        },
        "best_of_s": {v: round(t, 6) for v, t in timings.items()},
        "disabled_over_bare": round(ratio, 4),
        "enabled_over_bare": round(timings["enabled"] / timings["bare"], 4),
        "flat_disabled_over_bare": round(flat_ratio, 4),
        "flat_enabled_over_bare": round(
            timings["flat-enabled"] / timings["flat-bare"], 4),
        "ceiling": OVERHEAD_CEILING,
    }
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")

    for name, r, dis, bare in (
        ("indexed", ratio, "disabled", "bare"),
        ("flat", flat_ratio, "flat-disabled", "flat-bare"),
    ):
        within_noise = (timings[dis] - timings[bare]) <= NOISE_FLOOR_S
        assert r <= OVERHEAD_CEILING or within_noise, (
            f"{name} disabled-observability overhead {r:.3f}x exceeds "
            f"the {OVERHEAD_CEILING}x budget: {report['best_of_s']}"
        )
