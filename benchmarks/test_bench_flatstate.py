"""Tentpole benchmark: flat struct-of-arrays state engine + sharded mck.

Three measurements, mirroring the two halves of the flat-state PR:

- **Reversed-chain drain, flat vs. indexed** -- the same adversarial
  single-sender workload as ``test_bench_scheduler.py``, but now the
  indexed scheduler (PR-1's winner) is the *baseline* and the flat
  backend the candidate.  The chain's requirement rows are pivot-only
  (a single-writer chain has no cross-sender deps), so the flat offer
  path is O(1) per message where the indexed path re-derives the
  missing-dep set from the n-length vectors -- the gap widens with n.
- **Batched activation predicate** -- :class:`PendingMatrix.ready_mask`
  evaluated over a few thousand parked requirement rows, the vectorized
  form of "which buffered messages are ready?".
- **Sharded model checking** -- states/s of the exhaustive anbkh /
  triangle check at 1, 2 and 4 workers via ``check_sharded``.

``test_flatstate_speedup_report`` re-times everything with
``time.perf_counter`` (pytest-benchmark may run with
``--benchmark-disable`` in CI smoke), asserts the acceptance bars --
flat >= 5x indexed on the n=256 chain, sharded mck >= 3x serial at 4
workers *when the host has >= 4 CPUs* -- and writes
``BENCH_flatstate.json`` at the repo root.  On smaller hosts (CI
containers often expose a single core) the mck bar is recorded but not
enforced: process-pool sharding cannot beat serial without parallel
hardware, and the count-parity tests in ``tests/mck/test_shard.py``
already pin its correctness independently of speed.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.flatstate import FlatDeps, FlatProgress, PendingMatrix
from repro.core.optp import OptPProtocol
from repro.mck import CheckConfig, check, check_sharded, workload_by_name
from repro.sim.node import Node
from repro.sim.trace import FlatTrace, Trace

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_flatstate.json"

CHAIN_DEPTH = 1024
SWEEP_N = [16, 64, 256]
SPEEDUP_FLOOR_AT_256 = 5.0

MATRIX_ROWS = 4096
PREDICATE_FLOOR_PER_SEC = 1_000_000.0

MCK_JOBS = [1, 2, 4]
MCK_SPEEDUP_FLOOR_AT_4 = 3.0
MCK_MIN_CPUS = 4


def reversed_chain(n, depth=CHAIN_DEPTH, flat=False):
    """One sender, ``depth`` causally chained writes, delivered newest
    first.  With ``flat=True`` the sender precomputes each message's
    :class:`FlatDeps` row at write time, as every flat-cluster writer
    does."""
    sender = OptPProtocol(0, n)
    if flat:
        sender.enable_flat_state()
    msgs = [sender.write("x", k).outgoing[0].message for k in range(depth)]
    msgs.reverse()
    return msgs


def drain_reversed(n, mode, msgs):
    """Feed the reversed chain into one receiver; return applied count.

    ``mode`` picks the production pairing: ``"flat"`` runs the flat
    state backend (which brings its own scheduler and compact trace),
    anything else forces that scheduler on the scalar backend.
    """
    if mode == "flat":
        trace = FlatTrace(n)
        node = Node(OptPProtocol(1, n), trace, clock=lambda: 0.0,
                    dispatch=lambda *a: None, state_backend="flat")
    else:
        trace = Trace(n)
        node = Node(OptPProtocol(1, n), trace, clock=lambda: 0.0,
                    dispatch=lambda *a: None, scheduler=mode)
    for m in msgs:
        node.receive(m)
    assert node.buffered_count == 0
    return len(trace.apply_order(1))


@pytest.mark.parametrize("mode", ["indexed", "flat"])
@pytest.mark.parametrize("n", SWEEP_N)
def test_bench_flat_reversed_chain(benchmark, n, mode):
    msgs = reversed_chain(n, flat=(mode == "flat"))
    applies = benchmark.pedantic(drain_reversed, args=(n, mode, msgs),
                                 rounds=3, iterations=1)
    assert applies == CHAIN_DEPTH


def _filled_matrix(n_components=64, rows=MATRIX_ROWS):
    matrix = PendingMatrix(n_components, capacity=rows)
    for k in range(rows):
        counts = [0] * n_components
        counts[k % n_components] = (k // n_components) + 1
        matrix.add(FlatDeps.from_counts(counts, pivot=k % n_components))
    progress = FlatProgress([0] * n_components)
    return matrix, progress


def test_bench_flat_ready_mask(benchmark):
    """The batched activation predicate at 4096 parked rows."""
    matrix, progress = _filled_matrix()
    mask = benchmark(lambda: matrix.ready_mask(progress.vec))
    assert mask.shape == (MATRIX_ROWS,)
    assert not mask.any()  # nothing satisfied at zero progress


def _mck_config():
    return CheckConfig(protocol="anbkh", workload=workload_by_name("triangle"))


def _mck_states_per_sec(jobs):
    config = _mck_config()
    t0 = time.perf_counter()
    if jobs == 1:
        result = check(config)
    else:
        result, _stats = check_sharded(config, jobs=jobs)
    wall = time.perf_counter() - t0
    return result.states, wall


@pytest.mark.parametrize("jobs", MCK_JOBS)
def test_bench_mck_sharded(benchmark, jobs):
    states, _ = benchmark.pedantic(_mck_states_per_sec, args=(jobs,),
                                   rounds=1, iterations=1)
    assert states > 10_000


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_flatstate_speedup_report():
    """Times everything, asserts the acceptance bars, and writes the
    committed ``BENCH_flatstate.json`` artifact."""
    chain = {}
    for n in SWEEP_N:
        indexed_msgs = reversed_chain(n)
        flat_msgs = reversed_chain(n, flat=True)
        indexed = _best_of(lambda: drain_reversed(n, "indexed", indexed_msgs))
        flat = _best_of(lambda: drain_reversed(n, "flat", flat_msgs))
        chain[str(n)] = {
            "indexed_s": round(indexed, 6),
            "flat_s": round(flat, 6),
            "speedup": round(indexed / flat, 2),
            "flat_deliveries_per_sec": round(CHAIN_DEPTH / flat, 1),
        }

    matrix, progress = _filled_matrix()
    iters = 200
    vec = progress.vec

    def sweep():
        for _ in range(iters):
            matrix.ready_mask(vec)

    mask_wall = _best_of(sweep)
    predicate_evals_per_sec = MATRIX_ROWS * iters / mask_wall

    mck = {}
    for jobs in MCK_JOBS:
        states, wall = min(
            (_mck_states_per_sec(jobs) for _ in range(2)),
            key=lambda pair: pair[1],
        )
        mck[str(jobs)] = {
            "states": states,
            "wall_s": round(wall, 6),
            "states_per_sec": round(states / wall, 1),
        }
    for jobs in MCK_JOBS[1:]:
        assert mck[str(jobs)]["states"] == mck["1"]["states"], (
            "sharded state count diverged from serial -- parity broken")

    cpu_count = os.cpu_count() or 1
    mck_speedup_at_4 = round(
        mck["4"]["states_per_sec"] / mck["1"]["states_per_sec"], 2)
    mck_speedup_enforced = cpu_count >= MCK_MIN_CPUS

    report = {
        "bench": "flat-array protocol state engine + sharded model checking",
        "chain": {
            "shape": "single-sender reversed chain, flat vs indexed",
            "chain_depth": CHAIN_DEPTH,
            "n_sweep": SWEEP_N,
            "results": chain,
        },
        "predicate": {
            "rows": MATRIX_ROWS,
            "evals_per_sec": round(predicate_evals_per_sec, 1),
        },
        "mck": {
            "config": "anbkh / triangle, exhaustive",
            "results": mck,
            "speedup_at_4": mck_speedup_at_4,
            "cpu_count": cpu_count,
            "mck_speedup_enforced": mck_speedup_enforced,
        },
    }
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")

    assert predicate_evals_per_sec >= PREDICATE_FLOOR_PER_SEC, (
        f"ready_mask at only {predicate_evals_per_sec:.0f} evals/s "
        f"(floor {PREDICATE_FLOOR_PER_SEC:.0f})")
    speedup_256 = chain["256"]["speedup"]
    assert speedup_256 >= SPEEDUP_FLOOR_AT_256, (
        f"flat backend only {speedup_256}x faster than indexed at n=256 "
        f"(floor {SPEEDUP_FLOOR_AT_256}x): {chain}")
    if mck_speedup_enforced:
        assert mck_speedup_at_4 >= MCK_SPEEDUP_FLOOR_AT_4, (
            f"sharded mck only {mck_speedup_at_4}x serial at 4 workers "
            f"(floor {MCK_SPEEDUP_FLOOR_AT_4}x on {cpu_count} CPUs): {mck}")
