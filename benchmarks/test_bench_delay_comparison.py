"""Q1: write-delay comparison, OptP vs ANBKH vs WS variants.

The paper's comparison criterion (Section 3.5) measured: on identical
open-loop message schedules, the per-protocol write-delay counts across
process counts and latency regimes.  Expected shape (asserted):

- OptP's delays <= ANBKH's at every point (subset enabling sets);
- OptP executes ZERO unnecessary delays (Theorem 4);
- ANBKH's excess consists of direct false-causality delays plus the
  cascading (individually necessary) delays they trigger downstream.

Each benchmark measures a full verified sweep point; the printed table
(-s to see it) is the harness's version of the paper's missing
evaluation section.
"""

import pytest

from repro.analysis import check_run
from repro.analysis.metrics import RunMetrics, comparison_table
from repro.paperfigs.comparison import compare_on_schedule
from repro.sim import SeededLatency, run_schedule
from repro.workloads import WorkloadConfig, random_schedule

SEEDS = (0, 1, 2)


def _point(n, seed, write_fraction=0.6, ops=15):
    cfg = WorkloadConfig(
        n_processes=n,
        ops_per_process=ops,
        n_variables=max(2, n // 2),
        write_fraction=write_fraction,
        seed=seed,
    )
    return random_schedule(cfg)


def _run_point(n, protocols):
    """One sweep point: all protocols on identical schedules, verified."""
    all_metrics = []
    for seed in SEEDS:
        sched = _point(n, seed)
        all_metrics += compare_on_schedule(
            sched, n, protocols=protocols, latency_seed=seed
        )
    return all_metrics


@pytest.mark.parametrize("n", [3, 5, 8])
def test_bench_q1_delays_vs_processes(benchmark, n):
    metrics = benchmark.pedantic(
        _run_point, args=(n, ("optp", "anbkh")), rounds=1, iterations=1
    )
    by = {}
    for m in metrics:
        by.setdefault(m.protocol, []).append(m)
    optp = sum(m.delays for m in by["optp"])
    anbkh = sum(m.delays for m in by["anbkh"])
    unnecessary = sum(m.unnecessary_delays for m in by["anbkh"])
    assert optp <= anbkh
    assert all(m.unnecessary_delays == 0 for m in by["optp"])
    # Note: the gap can EXCEED the direct unnecessary count -- an
    # ANBKH delay postpones applies, which can cascade into further
    # (individually necessary) delays downstream.  The direct
    # false-causality count is reported alongside.
    print(f"\nn={n}: optp={optp} anbkh={anbkh} "
          f"(gap={anbkh - optp}, direct-unnecessary={unnecessary})")
    print(comparison_table(metrics, title=f"Q1 point n={n}"))


@pytest.mark.parametrize("write_fraction", [0.3, 0.8])
def test_bench_q1_delays_vs_write_fraction(benchmark, write_fraction):
    def run():
        out = []
        for seed in SEEDS:
            sched = _point(6, seed, write_fraction=write_fraction)
            out += compare_on_schedule(
                sched, 6, protocols=("optp", "anbkh"), latency_seed=seed
            )
        return out

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    optp = sum(m.delays for m in metrics if m.protocol == "optp")
    anbkh = sum(m.delays for m in metrics if m.protocol == "anbkh")
    assert optp <= anbkh


@pytest.mark.parametrize("mean", [0.5, 3.0])
def test_bench_q1_delays_vs_latency_spread(benchmark, mean):
    """Wider latency spread -> more reordering -> more delays overall;
    the OptP <= ANBKH inequality holds in every regime."""

    def run():
        out = []
        for seed in SEEDS:
            sched = _point(5, seed)
            latency = SeededLatency(seed, dist="exponential", mean=mean)
            out += compare_on_schedule(
                sched, 5, protocols=("optp", "anbkh"), latency=latency
            )
        return out

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    optp = sum(m.delays for m in metrics if m.protocol == "optp")
    anbkh = sum(m.delays for m in metrics if m.protocol == "anbkh")
    assert optp <= anbkh


def test_bench_q1_fifo_ablation(benchmark):
    """DESIGN.md ablation: FIFO channels remove same-sender reordering
    but NOT cross-sender false causality -- ANBKH still delays more."""

    def run():
        rows = {}
        for fifo in (False, True):
            totals = {"optp": 0, "anbkh": 0}
            for seed in SEEDS:
                sched = _point(5, seed)
                for proto in ("optp", "anbkh"):
                    r = run_schedule(
                        proto, 5, sched,
                        latency=SeededLatency(seed, dist="exponential", mean=2.0),
                        fifo=fifo,
                    )
                    report = check_run(r)
                    assert report.ok
                    totals[proto] += report.total_delays
            rows[fifo] = totals
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for fifo, totals in rows.items():
        assert totals["optp"] <= totals["anbkh"], rows
    # FIFO can only remove delays, never add
    assert rows[True]["optp"] <= rows[False]["optp"]
    print(f"\nFIFO ablation: {rows}")
